"""Seeded affine-program generation: the input side of the fuzzer.

Every fuzz case is an :class:`~repro.ir.AffineProgram` fully determined by a
``(seed, profile)`` pair: the same pair produces the same program — same
statements, same dependences, same declaration order — in every process and
on every platform, so a one-line corpus entry reproduces a failure exactly.
The program *fingerprint* (:func:`repro.analysis.plan.program_fingerprint`)
is the stability contract the tests pin down: fingerprints are computed from
the mathematical content, so cross-process determinism is checked end to end.

Profiles
--------
``small``
    The historical two-statement generator that `tests/rel/` grew for the
    random-DFG soundness sweeps, promoted here verbatim (same RNG call
    sequence, same dependence-template pool), so every seed keeps producing
    the exact program the existing sweep results were obtained on.
``wide``
    More statements (3-5) on 2-D domains with a richer dependence mix —
    exercises the decomposition lemma across many may-spill sets.
``deep``
    3-D iteration domains with two inner dimensions — exercises deeper
    wavefront parametrisation and higher-dimensional counting/projection.

Generated dependences are drawn from *offset families* chosen so that the
instance-level CDAG is acyclic by construction: a dependence either steps
backwards in time (``t-1`` with any inner coordinate), stays within the same
time step reading a strictly earlier statement, or steps backwards along an
inner dimension of the same statement.  Executing vertices in lexicographic
``(t, statement index, inner dims)`` order then respects every edge.

Reductions
----------
The shrinker (:mod:`repro.fuzz.runner`) minimises failing programs by
deleting statements, dependences and dimensions.  The surgery lives here —
:func:`delete_statement`, :func:`delete_dependence`, :func:`delete_dimension`
and the :func:`apply_reduction` replay — because a corpus entry records a
failure as ``(seed, profile, reduction)``: regenerate, re-apply, re-check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..analysis.plan import program_fingerprint
from ..ir import AffineProgram, ProgramBuilder
from ..ir.program import FlowDep, Statement
from ..sets import AffineFunction

#: Dependence templates over two statements P/Q on [0,M) x [0,N) domains —
#: the historical pool of ``tests/rel/test_reachability.py``, verbatim.
DEP_POOL_SMALL = [
    "[M, N] -> {{ P[t, i] -> P[t, i - 1] : 0 <= t < M and 1 <= i < N }}",
    "[M, N] -> {{ P[t, i] -> P[t - 1, i] : 1 <= t < M and 0 <= i < N }}",
    "[M, N] -> {{ Q[t, i] -> Q[t - 1, i] : 1 <= t < M and 0 <= i < N }}",
    "[M, N] -> {{ Q[t, i] -> Q[t, i - 1] : 0 <= t < M and 1 <= i < N }}",
    "[M, N] -> {{ Q[t, i] -> P[t, N - 1] : 0 <= t < M and 0 <= i < N }}",
    "[M, N] -> {{ Q[t, i] -> P[t, i] : 0 <= t < M and 0 <= i < N }}",
    "[M, N] -> {{ P[t, i] -> Q[t - 1, i] : 1 <= t < M and 0 <= i < N }}",
    "[M, N] -> {{ P[t, i] -> Q[t - 1, N - 1] : 1 <= t < M and 0 <= i < N }}",
    "[M, N] -> {{ P[t, i] -> Q[t - 1, 0] : 1 <= t < M and 0 <= i < N }}",
]


@dataclass(frozen=True)
class FuzzProfile:
    """Size knobs of one generator family.

    ``statements``/``dependences`` are inclusive ``(min, max)`` ranges the
    seeded RNG draws from; ``dims`` is the statement dimensionality (the
    first dimension is always the time-like ``t``); ``instances`` are the
    tiny concrete parameter valuations the CDAG-expanding oracles use.
    """

    name: str
    params: tuple[str, ...] = ("M", "N")
    dims: int = 2
    statements: tuple[int, int] = (2, 2)
    dependences: tuple[int, int] = (2, 5)
    instances: tuple[tuple[tuple[str, int], ...], ...] = (
        (("M", 3), ("N", 4)),
        (("M", 4), ("N", 5)),
    )
    description: str = ""

    def instance_dicts(self) -> list[dict[str, int]]:
        return [dict(pairs) for pairs in self.instances]


PROFILES: dict[str, FuzzProfile] = {
    "small": FuzzProfile(
        name="small",
        description="the historical tests/rel two-statement 2-D generator",
    ),
    "wide": FuzzProfile(
        name="wide",
        statements=(3, 5),
        dependences=(4, 9),
        description="3-5 statements on 2-D domains, richer dependence mix",
    ),
    "deep": FuzzProfile(
        name="deep",
        dims=3,
        statements=(2, 3),
        dependences=(3, 7),
        instances=((("M", 3), ("N", 3)), (("M", 4), ("N", 3))),
        description="2-3 statements on 3-D domains (two inner dimensions)",
    ),
}

#: Inner dimension names by position (after the leading time dimension).
_INNER_DIMS = ("i", "j", "k")


def profile_to_dict(profile: FuzzProfile) -> dict:
    """JSON form of a profile (corpus entries embed it for custom profiles)."""
    return {
        "name": profile.name,
        "params": list(profile.params),
        "dims": profile.dims,
        "statements": list(profile.statements),
        "dependences": list(profile.dependences),
        "instances": [[list(pair) for pair in inst] for inst in profile.instances],
        "description": profile.description,
    }


def profile_from_dict(doc: dict) -> FuzzProfile:
    """Rebuild a profile from :func:`profile_to_dict` output."""
    return FuzzProfile(
        name=str(doc["name"]),
        params=tuple(doc["params"]),
        dims=int(doc["dims"]),
        statements=(int(doc["statements"][0]), int(doc["statements"][1])),
        dependences=(int(doc["dependences"][0]), int(doc["dependences"][1])),
        instances=tuple(
            tuple((str(name), int(value)) for name, value in inst)
            for inst in doc["instances"]
        ),
        description=str(doc.get("description", "")),
    )


def resolve_profile(profile: "str | FuzzProfile") -> FuzzProfile:
    if isinstance(profile, FuzzProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise KeyError(
            f"unknown fuzz profile {profile!r}; expected one of {sorted(PROFILES)}"
        ) from None


def random_program(seed: int, profile: "str | FuzzProfile" = "small") -> AffineProgram:
    """The affine program of one fuzz case, reproducible from ``(seed, profile)``."""
    profile = resolve_profile(profile)
    if profile.name == "small":
        return _random_program_small(seed)
    return _random_program_structured(seed, profile)


def fingerprint_for(seed: int, profile: "str | FuzzProfile" = "small") -> str:
    """Stable fingerprint of the case's program (the determinism contract)."""
    return program_fingerprint(random_program(seed, profile))


def _random_program_small(seed: int) -> AffineProgram:
    """The historical ``tests/rel`` generator, byte-for-byte.

    The RNG call sequence (``sample`` then the implicit ``randint`` inside
    it) must not change: existing sweep seeds are pinned to these programs.
    """
    rng = random.Random(seed)
    deps = rng.sample(DEP_POOL_SMALL, rng.randint(2, 5))
    builder = (
        ProgramBuilder(f"rand{seed}", ["M", "N"])
        .add_array("[N] -> { A[i] : 0 <= i < N }")
        .add_statement("[M, N] -> { P[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_statement("[M, N] -> { Q[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_dependence("[M, N] -> { P[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .add_dependence("[M, N] -> { Q[t, i] -> A[i] : t = 0 and 0 <= i < N }")
    )
    for dep in deps:
        builder.add_dependence(dep.format())
    return builder.build()


def _random_program_structured(seed: int, profile: FuzzProfile) -> AffineProgram:
    """Structured generation for the non-legacy profiles (wide/deep/custom)."""
    rng = random.Random(f"repro-fuzz:{profile.name}:{seed}")
    inner = _INNER_DIMS[: profile.dims - 1]
    dims = ("t",) + tuple(inner)
    params_header = "[" + ", ".join(profile.params) + "]"
    size = profile.params[1] if len(profile.params) > 1 else profile.params[0]
    time = profile.params[0]

    count = rng.randint(*profile.statements)
    names = [f"S{index}" for index in range(count)]
    box = " and ".join(
        [f"0 <= t < {time}"] + [f"0 <= {d} < {size}" for d in inner]
    )

    builder = ProgramBuilder(f"{profile.name}{seed}", list(profile.params))
    builder.add_array(f"[{size}] -> {{ A[i] : 0 <= i < {size} }}")
    for name in names:
        builder.add_statement(
            f"{params_header} -> {{ {name}[{', '.join(dims)}] : {box} }}", flops=1
        )
        # Every statement consumes the input array at t = 0, so the DFG has
        # compulsory misses and every vertex family is anchored on an input.
        builder.add_dependence(
            f"{params_header} -> {{ {name}[{', '.join(dims)}] -> A[i] : t = 0 and {box} }}"
        )

    wanted = rng.randint(*profile.dependences)
    seen: set[str] = set()
    attempts = 0
    while len(seen) < wanted and attempts < wanted * 12:
        attempts += 1
        relation = _random_dependence(rng, names, dims, inner, params_header, size, time)
        if relation is None or relation in seen:
            continue
        seen.add(relation)
        builder.add_dependence(relation)
    return builder.build()


def _random_dependence(
    rng: random.Random,
    names: list[str],
    dims: tuple[str, ...],
    inner: tuple[str, ...],
    params_header: str,
    size: str,
    time: str,
) -> str | None:
    """One dependence drawn from the acyclic offset families (or None).

    Families (``sink`` reads ``source``):

    * ``back-t`` — any source, time steps back by one, each inner source
      coordinate is the matching sink coordinate, ``0`` or ``size-1``;
    * ``same-t`` — source strictly earlier in statement order, same time
      step, inner coordinates as above (point-wise or broadcast);
    * ``inner-chain`` — the statement reads itself one step back along one
      inner dimension (the wavefront chain-circuit family).
    """
    sink_index = rng.randrange(len(names))
    sink = names[sink_index]
    kinds = ["back-t", "inner-chain"]
    if sink_index > 0:
        kinds.append("same-t")
    kind = rng.choice(kinds)
    guards = [f"0 <= t < {time}"] + [f"0 <= {d} < {size}" for d in inner]

    if kind == "inner-chain":
        stepped = rng.choice(inner)
        coords = ["t"] + [f"{d} - 1" if d == stepped else d for d in inner]
        guards = [f"0 <= t < {time}"] + [
            f"1 <= {d} < {size}" if d == stepped else f"0 <= {d} < {size}"
            for d in inner
        ]
        source = sink
    elif kind == "same-t":
        source = names[rng.randrange(sink_index)]
        coords = ["t"] + [rng.choice([d, "0", f"{size} - 1"]) for d in inner]
        if all(coord == dim for coord, dim in zip(coords, dims)):
            return None  # identity read: not a meaningful dependence
    else:  # back-t
        source = names[rng.randrange(len(names))]
        coords = ["t - 1"] + [rng.choice([d, "0", f"{size} - 1"]) for d in inner]
        guards[0] = f"1 <= t < {time}"

    head = f"{sink}[{', '.join(dims)}]"
    image = f"{source}[{', '.join(coords)}]"
    return f"{params_header} -> {{ {head} -> {image} : {' and '.join(guards)} }}"


# -- reductions (program surgery used by the shrinker) ------------------------


def _rebuild(
    program: AffineProgram,
    statements: Sequence[Statement],
    dependences: Sequence[FlowDep],
) -> AffineProgram:
    return AffineProgram(
        program.name,
        program.params,
        list(program.arrays.values()),
        statements,
        dependences,
    )


def delete_statement(program: AffineProgram, name: str) -> AffineProgram:
    """The program without statement ``name`` and every dependence touching it."""
    if name not in program.statements:
        raise KeyError(f"no statement {name!r} in {program.name}")
    statements = [s for s in program.statements.values() if s.name != name]
    dependences = [
        d for d in program.dependences if d.sink != name and d.source != name
    ]
    return _rebuild(program, statements, dependences)


def delete_dependence(program: AffineProgram, label: str) -> AffineProgram:
    """The program without the dependence carrying ``label``."""
    dependences = [d for d in program.dependences if d.label != label]
    if len(dependences) == len(program.dependences):
        raise KeyError(f"no dependence labelled {label!r} in {program.name}")
    return _rebuild(program, list(program.statements.values()), dependences)


def delete_dimension(
    program: AffineProgram, statement: str, dim: str
) -> AffineProgram | None:
    """The program with ``dim`` removed from ``statement``'s iteration space.

    Dependences *into* the statement whose read function mentions the removed
    dimension are dropped (their sink coordinate no longer exists); functions
    *out of* the statement lose the matching target coordinate.  Returns
    ``None`` when the reduction does not apply (unknown/last dimension, or
    the surgery produces an invalid program).
    """
    stmt = program.statements.get(statement)
    if stmt is None or dim not in stmt.dims or len(stmt.dims) <= 1:
        return None
    index = stmt.space.index_of(dim)
    remaining = [d for d in stmt.dims if d != dim]
    new_domain = stmt.domain.project_onto(remaining)
    new_stmt = Statement(
        stmt.name, new_domain, flops=stmt.flops, accesses=stmt.accesses
    )

    statements = [new_stmt if s.name == statement else s for s in program.statements.values()]
    dependences: list[FlowDep] = []
    try:
        for dep in program.dependences:
            function, domain = dep.function, dep.domain
            if dep.sink == statement:
                if any(expr.depends_on((dim,)) for expr in function.exprs):
                    continue
                function = AffineFunction(
                    new_domain.space, function.target_tuple, function.exprs
                )
                domain = domain.project_onto(remaining)
            if dep.source == statement:
                exprs = [e for pos, e in enumerate(function.exprs) if pos != index]
                if not exprs:
                    continue
                function = AffineFunction(
                    function.domain_space, function.target_tuple, exprs
                )
            dependences.append(
                FlowDep(dep.source, dep.sink, function, domain, label=dep.label)
            )
        return _rebuild(program, statements, dependences)
    except (ValueError, KeyError):
        return None


#: JSON-serializable reduction ops: ``["statement", name]``,
#: ``["dependence", label]`` or ``["dimension", statement, dim]``.
ReductionOp = Sequence[str]


def apply_reduction(
    program: AffineProgram, reduction: Sequence[ReductionOp]
) -> AffineProgram:
    """Replay a recorded reduction (list of ops) on a regenerated program.

    Raises :class:`ValueError` on a malformed op and :class:`KeyError` when
    an op no longer applies — a corpus entry that drifted out of sync with
    the generator should fail loudly, not silently check a different program.
    """
    for op in reduction:
        op = list(op)
        if len(op) == 2 and op[0] == "statement":
            program = delete_statement(program, op[1])
        elif len(op) == 2 and op[0] == "dependence":
            program = delete_dependence(program, op[1])
        elif len(op) == 3 and op[0] == "dimension":
            reduced = delete_dimension(program, op[1], op[2])
            if reduced is None:
                raise KeyError(f"dimension reduction {op!r} no longer applies")
            program = reduced
        else:
            raise ValueError(f"malformed reduction op {op!r}")
    return program


def case_program(
    seed: int,
    profile: "str | FuzzProfile" = "small",
    reduction: Sequence[ReductionOp] = (),
) -> AffineProgram:
    """Regenerate the (possibly reduced) program of a corpus entry."""
    return apply_reduction(random_program(seed, profile), reduction)
