"""Campaign driver: fan fuzz cases through the scheduler, shrink, replay.

A *campaign* draws ``(seed, profile)`` cases from the deterministic generator
and runs every requested oracle on each case.  Cases are fanned through the
same :func:`~repro.analysis.scheduler.schedule_work` engine that powers
derivation plans and the tiling search — one group per seed, one work item
per group — so campaigns parallelise across seeds on any executor and stream
verdicts the moment each seed completes.  All of a seed's oracles run inside
one work item on purpose: they share the per-process DFG and reachability
caches, so the expensive symbolic closure of a case is paid once, not once
per oracle per worker.

Failures are post-processed on the requester side:

1. **Shrink** — greedy delta debugging over the program surgery operators of
   :mod:`~repro.fuzz.generator` (statement deletion, then dependence
   deletion, then dimension deletion), repeated to a fixed point while the
   oracle still fails, under an invocation budget.
2. **Corpus** — each failure is written as a self-contained JSON repro file:
   seed + full profile spec + oracle + the reduction op list + the observed
   divergence.  Anyone (CI, a bisecting developer, a later session) can
   re-materialise the exact minimized program from the entry alone.
3. **Replay** — :func:`replay_entry` regenerates the reduced program and
   re-runs the oracle: the CLI exits non-zero while the divergence still
   reproduces and zero once the underlying bug is fixed, which makes corpus
   entries usable as regression gates.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.plan import program_fingerprint
from repro.analysis.scheduler import WorkItem, schedule_work
from repro.ir.program import AffineProgram

from .generator import (
    FuzzProfile,
    case_program,
    delete_dependence,
    delete_dimension,
    delete_statement,
    profile_from_dict,
    profile_to_dict,
    random_program,
    resolve_profile,
)
from .oracles import OracleContext, OracleVerdict, get_oracle, oracle_names, run_oracle

#: Version of the corpus entry JSON layout.
CORPUS_SCHEMA = 1

#: ``kind`` tag of corpus entries (guards against replaying arbitrary JSON).
CORPUS_KIND = "repro-fuzz-crash"

#: Default cap on oracle invocations spent shrinking one failure.
DEFAULT_SHRINK_BUDGET = 128


@dataclass
class CampaignFailure:
    """One divergence: where it was found and its minimized reproduction."""

    seed: int
    profile: str
    oracle: str
    verdict: OracleVerdict
    reduction: list = field(default_factory=list)
    statements: list = field(default_factory=list)
    dependences: list = field(default_factory=list)
    fingerprint: str = ""
    corpus_path: str | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "oracle": self.oracle,
            "verdict": self.verdict.to_dict(),
            "reduction": self.reduction,
            "statements": self.statements,
            "dependences": self.dependences,
            "fingerprint": self.fingerprint,
            "corpus_path": self.corpus_path,
        }


@dataclass
class CampaignResult:
    """Everything one campaign did, JSON-serializable for ``--json``."""

    profile: FuzzProfile
    oracles: tuple[str, ...]
    seeds: list[int]
    completed: list[int]
    verdicts: list[dict]
    failures: list[CampaignFailure]
    checks: int
    elapsed: float
    stopped_early: bool

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "profile": profile_to_dict(self.profile),
            "oracles": list(self.oracles),
            "seeds": list(self.seeds),
            "completed": list(self.completed),
            "cases": len(self.completed),
            "checks": self.checks,
            "verdicts": list(self.verdicts),
            "failures": [failure.to_dict() for failure in self.failures],
            "ok": self.ok,
            "elapsed_s": round(self.elapsed, 3),
            "stopped_early": self.stopped_early,
        }


def _run_case(payload) -> list[OracleVerdict]:
    """Executor-side body of one campaign case (module-level: picklable)."""
    seed, profile, oracle_list = payload
    program = random_program(seed, profile)
    ctx = OracleContext(seed=seed, profile=profile)
    return [run_oracle(name, program, ctx) for name in oracle_list]


def run_campaign(
    seeds: Iterable[int],
    profile: "str | FuzzProfile" = "small",
    oracles: Sequence[str] | None = None,
    executor: str | None = None,
    n_jobs: int = 1,
    time_budget: float | None = None,
    corpus_dir: "str | Path | None" = None,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
    log: Callable[[str], None] | None = None,
) -> CampaignResult:
    """Run every requested oracle on every seed; shrink and record failures.

    ``time_budget`` (seconds) stops scheduling new results once exceeded —
    already-completed seeds are kept, the result is marked ``stopped_early``.
    ``corpus_dir`` enables crash-corpus writing; ``oracles=None`` runs every
    registered oracle.  Unknown oracle names raise :class:`KeyError` before
    any work is scheduled.
    """
    prof = resolve_profile(profile)
    oracle_list = tuple(oracles) if oracles else oracle_names()
    for name in oracle_list:
        get_oracle(name)
    seed_list = [int(seed) for seed in seeds]
    started = time.monotonic()
    verdicts: list[dict] = []
    raw_failures: list[tuple[int, OracleVerdict]] = []
    completed: list[int] = []
    checks = 0
    stopped_early = False

    groups = [[WorkItem((seed, prof, oracle_list))] for seed in seed_list]
    stream = schedule_work(groups, _run_case, executor=executor, n_jobs=n_jobs)
    try:
        for group_index, results in stream:
            seed = seed_list[group_index]
            completed.append(seed)
            for verdict in results[0]:
                checks += verdict.checks
                verdicts.append({"seed": seed, **verdict.to_dict()})
                if not verdict.ok:
                    raw_failures.append((seed, verdict))
            if log is not None:
                bad = [v.oracle for v in results[0] if not v.ok]
                status = f"FAIL({', '.join(bad)})" if bad else "ok"
                case_checks = sum(v.checks for v in results[0])
                log(
                    f"seed {seed:>4} [{prof.name}] {status}: "
                    f"{case_checks} checks in {len(results[0])} oracles"
                )
            if time_budget is not None and time.monotonic() - started > time_budget:
                stopped_early = True
                if log is not None:
                    remaining = len(seed_list) - len(completed)
                    log(
                        f"time budget of {time_budget}s exhausted; "
                        f"stopping with {remaining} seeds unvisited"
                    )
                break
    finally:
        stream.close()

    failures = []
    for seed, verdict in raw_failures:
        failures.append(
            _materialise_failure(
                seed, prof, verdict, corpus_dir, shrink, shrink_budget, log
            )
        )
    completed.sort()
    return CampaignResult(
        profile=prof,
        oracles=oracle_list,
        seeds=seed_list,
        completed=completed,
        verdicts=verdicts,
        failures=failures,
        checks=checks,
        elapsed=time.monotonic() - started,
        stopped_early=stopped_early,
    )


# ---------------------------------------------------------------------------
# shrinking


def shrink_case(
    program: AffineProgram,
    oracle: str,
    ctx: OracleContext,
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> tuple[AffineProgram, list]:
    """Greedy delta debugging: delete while the oracle still fails.

    Passes run statement deletion first (the coarsest cut), then dependence
    deletion, then dimension deletion, and repeat to a fixed point.  Every
    accepted step is recorded as a reduction op replayable by
    :func:`~repro.fuzz.generator.apply_reduction`, so a corpus entry needs
    only ``(seed, profile, reduction)`` — never a serialized program.
    """
    spent = 0
    reduction: list = []

    def still_fails(candidate: AffineProgram) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        verdict = run_oracle(oracle, candidate, ctx)
        return not verdict.ok and not verdict.skipped

    changed = True
    while changed and spent < budget:
        changed = False
        for name in sorted(program.statements):
            if len(program.statements) <= 1:
                break
            if name not in program.statements:
                continue
            try:
                candidate = delete_statement(program, name)
            except (KeyError, ValueError):
                continue
            if still_fails(candidate):
                program = candidate
                reduction.append(["statement", name])
                changed = True
        for label in [dep.label for dep in program.dependences]:
            try:
                candidate = delete_dependence(program, label)
            except (KeyError, ValueError):
                continue
            if still_fails(candidate):
                program = candidate
                reduction.append(["dependence", label])
                changed = True
        for name in sorted(program.statements):
            if name not in program.statements:
                continue
            for dim in list(program.statements[name].dims):
                if len(program.statements[name].dims) <= 1:
                    break
                candidate = delete_dimension(program, name, dim)
                if candidate is None:
                    continue
                if still_fails(candidate):
                    program = candidate
                    reduction.append(["dimension", name, dim])
                    changed = True
    return program, reduction


def _materialise_failure(
    seed: int,
    profile: FuzzProfile,
    verdict: OracleVerdict,
    corpus_dir: "str | Path | None",
    shrink: bool,
    shrink_budget: int,
    log: Callable[[str], None] | None,
) -> CampaignFailure:
    """Shrink one raw failure and (optionally) persist it to the corpus."""
    ctx = OracleContext(seed=seed, profile=profile)
    program = random_program(seed, profile)
    reduction: list = []
    reduced = program
    if shrink:
        reduced, reduction = shrink_case(program, verdict.oracle, ctx, shrink_budget)
        if reduction:
            minimized = run_oracle(verdict.oracle, reduced, ctx)
            if minimized.ok:
                # The shrunk program no longer fails (a flaky or
                # state-dependent divergence): keep the original reproduction.
                reduced, reduction = program, []
            else:
                verdict = minimized
    failure = CampaignFailure(
        seed=seed,
        profile=profile.name,
        oracle=verdict.oracle,
        verdict=verdict,
        reduction=reduction,
        statements=sorted(reduced.statements),
        dependences=[dep.label for dep in reduced.dependences],
        fingerprint=program_fingerprint(reduced),
    )
    if log is not None:
        log(
            f"seed {seed} [{profile.name}] {verdict.oracle}: shrunk "
            f"{len(program.statements)}→{len(reduced.statements)} statements, "
            f"{len(program.dependences)}→{len(reduced.dependences)} dependences"
        )
    if corpus_dir is not None:
        failure.corpus_path = str(write_corpus_entry(corpus_dir, failure, profile))
        if log is not None:
            log(f"corpus entry written: {failure.corpus_path}")
    return failure


# ---------------------------------------------------------------------------
# corpus + replay


def write_corpus_entry(
    corpus_dir: "str | Path", failure: CampaignFailure, profile: FuzzProfile
) -> Path:
    """Persist one failure as a self-contained, replayable JSON repro file."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{failure.oracle}-{profile.name}-{failure.seed}.json"
    entry = {
        "schema": CORPUS_SCHEMA,
        "kind": CORPUS_KIND,
        "seed": failure.seed,
        "profile": profile.name,
        "profile_spec": profile_to_dict(profile),
        "oracle": failure.oracle,
        "reduction": failure.reduction,
        "fingerprint": failure.fingerprint,
        "statements": failure.statements,
        "dependences": failure.dependences,
        "details": failure.verdict.details,
        "divergence": failure.verdict.divergence,
    }
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_corpus_entry(path: "str | Path") -> dict:
    """Read and validate a corpus entry; raises ``ValueError`` when malformed."""
    try:
        entry = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read corpus entry {path}: {exc}") from exc
    if not isinstance(entry, dict) or entry.get("kind") != CORPUS_KIND:
        raise ValueError(f"{path} is not a repro fuzz corpus entry")
    if entry.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"{path} has corpus schema {entry.get('schema')!r}; "
            f"this build reads schema {CORPUS_SCHEMA}"
        )
    for field_name in ("seed", "oracle"):
        if field_name not in entry:
            raise ValueError(f"{path} is missing the {field_name!r} field")
    return entry


@dataclass
class ReplayOutcome:
    """Result of re-running a corpus entry against the current code."""

    verdict: OracleVerdict
    fingerprint: str
    expected_fingerprint: str

    @property
    def reproduced(self) -> bool:
        return not self.verdict.ok and not self.verdict.skipped

    @property
    def fingerprint_matches(self) -> bool:
        return not self.expected_fingerprint or (
            self.fingerprint == self.expected_fingerprint
        )

    def to_dict(self) -> dict:
        return {
            "reproduced": self.reproduced,
            "verdict": self.verdict.to_dict(),
            "fingerprint": self.fingerprint,
            "expected_fingerprint": self.expected_fingerprint,
            "fingerprint_matches": self.fingerprint_matches,
        }


def replay_entry(entry: dict) -> ReplayOutcome:
    """Re-materialise a corpus entry's minimized program and re-run its oracle."""
    spec = entry.get("profile_spec")
    profile = (
        profile_from_dict(spec) if spec else resolve_profile(entry.get("profile", "small"))
    )
    program = case_program(int(entry["seed"]), profile, entry.get("reduction") or [])
    ctx = OracleContext(seed=int(entry["seed"]), profile=profile)
    verdict = run_oracle(entry["oracle"], program, ctx)
    return ReplayOutcome(
        verdict=verdict,
        fingerprint=program_fingerprint(program),
        expected_fingerprint=str(entry.get("fingerprint") or ""),
    )
