"""Schedule generators for explicit CDAGs.

The Sec. 8.2 experiment compares the IOLB upper bound on operational intensity
with the OI achieved by concrete schedules.  PLuTo-generated tiled code is not
available offline, so we generate schedules directly on the expanded CDAG:

* ``lexicographic_schedule`` — the original program order (statement instances
  sorted lexicographically on their iteration vectors, statements interleaved
  at the innermost shared level), i.e. the untiled baseline;
* ``tiled_schedule`` — a rectangularly tiled order of the same instances
  (tiles executed one after the other, lexicographically within a tile), the
  stand-in for PLuTo's tiling;
* ``topological_schedule`` — an arbitrary valid order, useful as a fallback
  for programs whose lexicographic order is not a topological order of the
  simplified DFG.

All generated schedules are checked for validity against the CDAG before use.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir import CDAG, Vertex


def topological_schedule(cdag: CDAG) -> list[Vertex]:
    """Any topological order of the compute vertices."""
    compute = set(cdag.compute_vertices())
    return [v for v in cdag.topological_order() if v in compute]


def lexicographic_schedule(cdag: CDAG, statement_order: Sequence[str] | None = None) -> list[Vertex]:
    """Program-order schedule: iteration vectors ascending, statements interleaved.

    Statement instances are ordered by their iteration vector first and by the
    statement's position in ``statement_order`` (default: program declaration
    order) to break ties, which reproduces the textual order of a loop nest in
    which the statements share their outer loops.  Falls back to a topological
    order when the result violates a dependence.
    """
    order = list(statement_order or cdag.program.statements.keys())
    rank = {name: index for index, name in enumerate(order)}

    def key(vertex: Vertex):
        name, point = vertex
        return (point + (float("inf"),) * 8)[:8], rank.get(name, len(rank))

    schedule = sorted(cdag.compute_vertices(), key=key)
    if cdag.is_valid_schedule(schedule):
        return schedule
    return topological_schedule(cdag)


def tiled_schedule(
    cdag: CDAG,
    tile_sizes: Mapping[str, Sequence[int]],
    statement_order: Sequence[str] | None = None,
) -> list[Vertex]:
    """Rectangularly tiled schedule.

    ``tile_sizes[statement]`` gives the tile edge length per dimension of that
    statement (1 = untiled dimension).  Instances are ordered by their tile
    coordinates first, then lexicographically within the tile.  Falls back to
    a topological order if the tiling is not legal for the CDAG.
    """
    order = list(statement_order or cdag.program.statements.keys())
    rank = {name: index for index, name in enumerate(order)}

    def key(vertex: Vertex):
        name, point = vertex
        sizes = tile_sizes.get(name, (1,) * len(point))
        tile_coord = tuple(
            coordinate // size if size > 0 else coordinate
            for coordinate, size in zip(point, sizes)
        )
        return tile_coord, rank.get(name, len(rank)), point

    schedule = sorted(cdag.compute_vertices(), key=key)
    if cdag.is_valid_schedule(schedule):
        return schedule
    return topological_schedule(cdag)
