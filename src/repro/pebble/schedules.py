"""Schedule generators for explicit CDAGs.

The Sec. 8.2 experiment compares the IOLB upper bound on operational intensity
with the OI achieved by concrete schedules.  PLuTo-generated tiled code is not
available offline, so we generate schedules directly on the expanded CDAG:

* ``lexicographic_schedule`` — the original program order (statement instances
  sorted lexicographically on their iteration vectors, statements interleaved
  at the innermost shared level), i.e. the untiled baseline;
* ``tiled_schedule`` — a rectangularly tiled order of the same instances
  (tiles executed one after the other, lexicographically within a tile), the
  stand-in for PLuTo's tiling;
* ``topological_schedule`` — an arbitrary valid order, useful as a fallback
  for programs whose lexicographic order is not a topological order of the
  simplified DFG.

All generated schedules are checked for validity against the CDAG before use.
When the requested order violates a dependence (e.g. a rectangular tiling of
a stencil's time dimension, which is only legal after skewing), the generator
falls back to a plain topological order.  The fallback is *observable*: the
returned :class:`Schedule` carries a ``used_fallback`` flag and a
:class:`TilingFallbackWarning` is emitted, so callers such as the tiling
search in :mod:`repro.upper` can skip schedules that no longer reflect the
tiling they asked for instead of scoring a meaningless "tiling".
"""

from __future__ import annotations

import warnings
from typing import Mapping, Sequence

from ..ir import CDAG, Vertex


class TilingFallbackWarning(UserWarning):
    """The requested schedule order was illegal; a topological order was used."""


class Schedule(list):
    """A CDAG schedule: a plain list of vertices plus provenance flags.

    Subclasses ``list`` so every existing consumer (``simulate_schedule``,
    ``CDAG.is_valid_schedule``, slicing, ...) keeps working unchanged.

    Attributes
    ----------
    requested:
        The order that was asked for (``"lexicographic"``, ``"tiled"``,
        ``"topological"``).
    used_fallback:
        True when the requested order violated a dependence and the schedule
        is a plain topological order instead — i.e. the schedule does *not*
        realise the requested tiling/ordering.
    """

    def __init__(self, vertices, requested: str = "topological", used_fallback: bool = False):
        super().__init__(vertices)
        self.requested = requested
        self.used_fallback = used_fallback


def topological_schedule(cdag: CDAG) -> Schedule:
    """Any topological order of the compute vertices."""
    compute = set(cdag.compute_vertices())
    return Schedule(
        (v for v in cdag.topological_order() if v in compute),
        requested="topological",
    )


def _finish(cdag: CDAG, ordered: list[Vertex], requested: str, warn: bool) -> Schedule:
    """Validate a candidate order, falling back observably when illegal."""
    if cdag.is_valid_schedule(ordered):
        return Schedule(ordered, requested=requested)
    if warn:
        warnings.warn(
            f"{requested} order violates a dependence of {cdag.program.name!r}; "
            "falling back to a topological order (the schedule does not "
            "realise the requested ordering)",
            TilingFallbackWarning,
            stacklevel=3,
        )
    fallback = topological_schedule(cdag)
    return Schedule(fallback, requested=requested, used_fallback=True)


def lexicographic_schedule(
    cdag: CDAG, statement_order: Sequence[str] | None = None, warn: bool = True
) -> Schedule:
    """Program-order schedule: iteration vectors ascending, statements interleaved.

    Statement instances are ordered by their iteration vector first and by the
    statement's position in ``statement_order`` (default: program declaration
    order) to break ties, which reproduces the textual order of a loop nest in
    which the statements share their outer loops.  Falls back to a topological
    order when the result violates a dependence (``used_fallback`` is set on
    the returned schedule and a :class:`TilingFallbackWarning` is emitted
    unless ``warn=False``).
    """
    order = list(statement_order or cdag.program.statements.keys())
    rank = {name: index for index, name in enumerate(order)}

    def key(vertex: Vertex):
        name, point = vertex
        return (point + (float("inf"),) * 8)[:8], rank.get(name, len(rank))

    ordered = sorted(cdag.compute_vertices(), key=key)
    return _finish(cdag, ordered, "lexicographic", warn)


def tiled_schedule(
    cdag: CDAG,
    tile_sizes: Mapping[str, Sequence[int]],
    statement_order: Sequence[str] | None = None,
    warn: bool = True,
) -> Schedule:
    """Rectangularly tiled schedule.

    ``tile_sizes[statement]`` gives the tile edge length per dimension of that
    statement (1 = untiled dimension).  Instances are ordered by their tile
    coordinates first, then lexicographically within the tile.  Falls back to
    a topological order if the tiling is not legal for the CDAG — check
    ``schedule.used_fallback`` before treating the result as a realisation of
    the requested tiling (a :class:`TilingFallbackWarning` is emitted unless
    ``warn=False``).
    """
    order = list(statement_order or cdag.program.statements.keys())
    rank = {name: index for index, name in enumerate(order)}

    def key(vertex: Vertex):
        name, point = vertex
        sizes = tile_sizes.get(name, (1,) * len(point))
        tile_coord = tuple(
            coordinate // size if size > 0 else coordinate
            for coordinate, size in zip(point, sizes)
        )
        return tile_coord, rank.get(name, len(rank)), point

    ordered = sorted(cdag.compute_vertices(), key=key)
    return _finish(cdag, ordered, "tiled", warn)
