"""Red-white pebble game (Def. 3.2) on explicit CDAGs.

The game models a two-level memory hierarchy with an explicitly managed fast
memory of ``S`` words:

* a **white pebble** on a vertex means its value has been computed;
* a **red pebble** means the value currently resides in fast memory;
* computing a vertex (rule R2) requires red pebbles on all its predecessors;
* re-loading an already computed value (rule R1) is the unit of I/O cost.

The module provides a move-by-move validator (used in tests to certify that
the simulators below play by the rules) and a reference player that executes
an arbitrary topological schedule with a chosen replacement policy, counting
the number of R1 moves — i.e. the number of loads, the quantity the IOLB
lower bounds are compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal

from ..ir import CDAG, Vertex

MoveKind = Literal["load", "compute", "evict"]


@dataclass(frozen=True)
class Move:
    """One move of the red-white pebble game."""

    kind: MoveKind
    vertex: Vertex


class PebbleGameError(ValueError):
    """Raised when a sequence of moves violates the game rules."""


@dataclass
class GameState:
    """Mutable state of a red-white pebble game in progress."""

    cdag: CDAG
    capacity: int
    red: set[Vertex] = field(default_factory=set)
    white: set[Vertex] = field(default_factory=set)
    loads: int = 0

    def __post_init__(self) -> None:
        # Input vertices start with a white pebble (their values exist in slow
        # memory); nothing is in fast memory initially.
        self.white |= set(self.cdag.inputs)

    def apply(self, move: Move) -> None:
        """Apply one move, enforcing rules R1-R3 of Def. 3.2."""
        vertex = move.vertex
        if move.kind == "load":
            if vertex not in self.white:
                raise PebbleGameError(f"load of a value never computed: {vertex}")
            if vertex in self.red:
                raise PebbleGameError(f"load of a value already in fast memory: {vertex}")
            if len(self.red) >= self.capacity:
                raise PebbleGameError("fast memory over capacity on load")
            self.red.add(vertex)
            self.loads += 1
        elif move.kind == "compute":
            if vertex in self.white:
                raise PebbleGameError(f"recomputation is not allowed: {vertex}")
            for predecessor in self.cdag.graph.predecessors(vertex):
                if predecessor not in self.red:
                    raise PebbleGameError(
                        f"computing {vertex} but operand {predecessor} is not in fast memory"
                    )
            if len(self.red) >= self.capacity:
                raise PebbleGameError("fast memory over capacity on compute")
            self.red.add(vertex)
            self.white.add(vertex)
        elif move.kind == "evict":
            if vertex not in self.red:
                raise PebbleGameError(f"evicting a value not in fast memory: {vertex}")
            self.red.remove(vertex)
        else:  # pragma: no cover - guarded by the Literal type
            raise PebbleGameError(f"unknown move kind {move.kind!r}")

    def is_complete(self) -> bool:
        """True when every compute vertex has been computed."""
        return all(v in self.white for v in self.cdag.compute_vertices())


def validate_game(cdag: CDAG, capacity: int, moves: Iterable[Move]) -> int:
    """Validate a complete game and return its I/O cost (number of loads)."""
    state = GameState(cdag, capacity)
    for move in moves:
        state.apply(move)
    if not state.is_complete():
        raise PebbleGameError("game ended before all vertices were computed")
    return state.loads
