"""Cache simulators that execute a schedule and count loads.

These play the role of the Dinero cache simulator in the paper's Sec. 8.2
experiment: given a schedule (an ordered list of compute vertices of an
explicit CDAG), they simulate a fully-associative fast memory of ``S`` values
with either an LRU or an optimal (Belady) replacement policy and return the
number of loads — which, divided into the operation count, gives the achieved
operational intensity of that schedule.

Every simulation is expressed as a sequence of red-white pebble game moves and
validated by :mod:`repro.pebble.game`, so the reported cost is guaranteed to
be the cost of a *legal* game; in particular it can never be below the IOLB
lower bound (the property the integration tests check).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass

from ..ir import CDAG, Vertex
from .game import GameState, Move

from .. import perf


@dataclass
class SimulationResult:
    """Outcome of simulating one schedule against one cache configuration."""

    loads: int
    evictions: int
    operations: int
    capacity: int
    policy: str

    def operational_intensity(self, flops_per_op: float = 1.0) -> float:
        """Achieved OI = #flops / #words loaded."""
        if self.loads == 0:
            return float("inf")
        return self.operations * flops_per_op / self.loads


class _ReplacementPolicy:
    """Interface for replacement policies over a fully-associative cache."""

    def touch(self, vertex: Vertex, time: int) -> None:
        raise NotImplementedError

    def choose_victim(self, resident: set[Vertex], protected: set[Vertex], time: int) -> Vertex:
        raise NotImplementedError


class _LRUPolicy(_ReplacementPolicy):
    def __init__(self) -> None:
        self.last_use: "OrderedDict[Vertex, int]" = OrderedDict()

    def touch(self, vertex: Vertex, time: int) -> None:
        self.last_use[vertex] = time
        self.last_use.move_to_end(vertex)

    def choose_victim(self, resident: set[Vertex], protected: set[Vertex], time: int) -> Vertex:
        for vertex in self.last_use:
            if vertex in resident and vertex not in protected:
                return vertex
        # Fall back to any unprotected resident value.
        for vertex in resident:
            if vertex not in protected:
                return vertex
        raise RuntimeError("no evictable value: cache too small for one operation")


class _BeladyPolicy(_ReplacementPolicy):
    """Optimal (furthest-next-use) replacement, given the whole schedule."""

    def __init__(self, future_uses: dict[Vertex, list[int]]):
        self.future_uses = future_uses

    def touch(self, vertex: Vertex, time: int) -> None:
        uses = self.future_uses.get(vertex)
        while uses and uses[0] <= time:
            uses.pop(0)

    def choose_victim(self, resident: set[Vertex], protected: set[Vertex], time: int) -> Vertex:
        best_vertex = None
        best_next_use = -1
        for vertex in resident:
            if vertex in protected:
                continue
            uses = self.future_uses.get(vertex, [])
            next_use = uses[0] if uses else float("inf")
            if next_use > best_next_use:
                best_next_use = next_use
                best_vertex = vertex
        if best_vertex is None:
            raise RuntimeError("no evictable value: cache too small for one operation")
        return best_vertex


@perf.timed("pebble-sim")
def simulate_schedule(
    cdag: CDAG,
    schedule: list[Vertex],
    capacity: int,
    policy: str = "lru",
) -> SimulationResult:
    """Execute a topological schedule with the given replacement policy.

    Each scheduled operation loads (or reuses) its operands, computes its
    value into fast memory, and evicts as needed.  The move sequence is
    validated against the pebble-game rules, so the returned load count is the
    cost of a legal S-RW game.
    """
    if policy not in ("lru", "opt"):
        raise ValueError(f"unknown replacement policy {policy!r}")
    if not cdag.is_valid_schedule(schedule):
        raise ValueError("schedule is not a valid topological order of the CDAG")

    if policy == "lru":
        replacement: _ReplacementPolicy = _LRUPolicy()
    else:
        future_uses: dict[Vertex, list[int]] = defaultdict(list)
        for time, vertex in enumerate(schedule):
            for operand in cdag.graph.predecessors(vertex):
                future_uses[operand].append(time)
        replacement = _BeladyPolicy(dict(future_uses))

    state = GameState(cdag, capacity)
    evictions = 0

    for time, vertex in enumerate(schedule):
        operands = list(cdag.graph.predecessors(vertex))
        if len(operands) + 1 > capacity:
            raise ValueError(
                f"cache of {capacity} words cannot hold the {len(operands)} operands of {vertex}"
            )
        protected = set(operands) | {vertex}
        for operand in operands:
            if operand in state.red:
                replacement.touch(operand, time)
                continue
            if len(state.red) >= capacity:
                victim = replacement.choose_victim(state.red, protected, time)
                state.apply(Move("evict", victim))
                evictions += 1
            state.apply(Move("load", operand))
            replacement.touch(operand, time)
        if len(state.red) >= capacity:
            victim = replacement.choose_victim(state.red, protected, time)
            state.apply(Move("evict", victim))
            evictions += 1
        state.apply(Move("compute", vertex))
        replacement.touch(vertex, time)

    return SimulationResult(
        loads=state.loads,
        evictions=evictions,
        operations=len(schedule),
        capacity=capacity,
        policy=policy,
    )
