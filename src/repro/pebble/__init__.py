"""Red-white pebble game, schedules and cache simulation on explicit CDAGs."""

from .cache import SimulationResult, simulate_schedule
from .game import GameState, Move, PebbleGameError, validate_game
from .schedules import lexicographic_schedule, tiled_schedule, topological_schedule

__all__ = [
    "GameState",
    "Move",
    "PebbleGameError",
    "SimulationResult",
    "lexicographic_schedule",
    "simulate_schedule",
    "tiled_schedule",
    "topological_schedule",
    "validate_game",
]
