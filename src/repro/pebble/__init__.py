"""Red-white pebble game, schedules and cache simulation on explicit CDAGs."""

from .cache import SimulationResult, simulate_schedule
from .game import GameState, Move, PebbleGameError, validate_game
from .schedules import (
    Schedule,
    TilingFallbackWarning,
    lexicographic_schedule,
    tiled_schedule,
    topological_schedule,
)

__all__ = [
    "GameState",
    "Move",
    "PebbleGameError",
    "Schedule",
    "SimulationResult",
    "TilingFallbackWarning",
    "lexicographic_schedule",
    "simulate_schedule",
    "tiled_schedule",
    "topological_schedule",
    "validate_game",
]
