"""repro.rel — symbolic affine relations with transitive closure.

The subsystem behind the Algorithm-5-faithful wavefront validation
(replacing the concrete-CDAG expansion of DESIGN.md deviation 3, retired):

* :class:`AffineRelation` — parametric affine relations (ISL-map analogue)
  over the :mod:`repro.sets` substrate, with union / intersect / compose /
  inverse / domain / range / apply;
* :func:`transitive_closure` — closure with an exactness certificate
  (:class:`ClosureResult`): exact for translation-family relations, an
  over- or under-approximation (by ``direction``) otherwise;
* :func:`graph_reachability` / :func:`check_universal_reachability` —
  Kleene-style reachability over a graph of relations (the DFG), the query
  the wavefront completeness hypothesis reduces to;
* :func:`get_backend` — pure-Python engine by default, ``islpy`` when
  importable (override with ``$REPRO_REL_BACKEND``).
"""

from .backend import (
    BACKEND_ENV,
    IslBackend,
    PurePythonBackend,
    RelationBackend,
    get_backend,
    islpy_available,
    relation_to_isl_str,
)
from .closure import (
    ClosureResult,
    ReachabilityResult,
    check_universal_reachability,
    graph_reachability,
    reflexive_closure,
    transitive_closure,
)
from .relation import AffineRelation, in_name, out_name, translation_of_piece

__all__ = [
    "AffineRelation",
    "BACKEND_ENV",
    "ClosureResult",
    "IslBackend",
    "PurePythonBackend",
    "ReachabilityResult",
    "RelationBackend",
    "check_universal_reachability",
    "get_backend",
    "graph_reachability",
    "in_name",
    "islpy_available",
    "out_name",
    "reflexive_closure",
    "relation_to_isl_str",
    "transitive_closure",
    "translation_of_piece",
]
