"""Parametric affine relations over the :mod:`repro.sets` substrate.

An :class:`AffineRelation` is the library's analogue of an ISL *map*: a
finite union of basic relations between two named spaces, each basic
relation being the integer points of a polyhedron over the concatenated
``(input, output)`` dimensions.  Relations are what Algorithm 5 of the paper
manipulates — dependence relations of the DFG, their compositions along
paths, and their transitive closures — so this module is the substrate that
lets the wavefront completeness hypothesis (Cor. 6.3) be decided
symbolically instead of on a concretely expanded CDAG.

Representation
--------------

Internally every piece is a :class:`~repro.sets.basic_set.BasicSet` over the
canonical dimension names ``__i0, __i1, ...`` (input) followed by
``__o0, __o1, ...`` (output); the user-facing spaces keep their own
dimension and tuple names.  Two relations with the same input/output arities
therefore always share a piece space, which makes union, subtraction and
subset tests direct :class:`~repro.sets.pset.ParamSet` operations.

Exactness
---------

Every relation carries an ``exact`` flag: ``True`` means the piece union is
*exactly* the integer relation denoted by the constructing operations.
Unions, intersections, inverses and subtractions preserve exactness;
composition eliminates the mid-space dimensions and stays exact only when
every eliminated dimension goes through a unit-coefficient equality (always
the case for the translation/broadcast dependence functions of the
PolyBench programs) — otherwise the Fourier-Motzkin fallback may
over-approximate and the flag drops to ``False``.  The transitive-closure
engine (:mod:`repro.rel.closure`) builds on this flag for its own
exactness certificate.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from ..sets import (
    EQ,
    GE,
    AffineFunction,
    BasicSet,
    Constraint,
    EliminationError,
    LinExpr,
    ParamSet,
    Space,
    basic_set_is_empty,
    eliminate_variable,
)
from ..sets.pset import _negate_basic

#: Composition keeps piece counts bounded: beyond the cap it truncates
#: (dropping pieces, flag -> inexact) rather than blowing up.  Dropping
#: pieces *under*-approximates, which is the sound direction for every
#: positive reachability certificate.  The subset test has a worklist step
#: budget instead; on overrun it conservatively answers False.
MAX_COMPOSE_PIECES = 160
MAX_SUBSET_PIECES = 128

#: A composed piece whose constraint system grows beyond this is dropped
#: (non-unit Fourier-Motzkin combinations can square the constraint count);
#: the drop under-approximates and flags the relation inexact.
MAX_PIECE_CONSTRAINTS = 64

#: Cuts larger than this are ignored by the subset test: negating a cut
#: yields one branch per constraint, and each branch costs an emptiness
#: check, so oversized cuts make the test quadratic for little benefit.
#: Ignoring a cut only makes the test more conservative.
MAX_SUBSET_CUT_CONSTRAINTS = 32


def in_name(index: int) -> str:
    """Canonical internal name of input dimension ``index``."""
    return f"__i{index}"


def out_name(index: int) -> str:
    """Canonical internal name of output dimension ``index``."""
    return f"__o{index}"


def _in_names(arity: int) -> tuple[str, ...]:
    return tuple(in_name(k) for k in range(arity))


def _out_names(arity: int) -> tuple[str, ...]:
    return tuple(out_name(k) for k in range(arity))


def _merge_params(*param_tuples: Sequence[str]) -> tuple[str, ...]:
    merged: list[str] = []
    for params in param_tuples:
        for p in params:
            if p not in merged:
                merged.append(p)
    return tuple(merged)


def _piece_space(n_in: int, n_out: int, params: Sequence[str]) -> Space:
    return Space("__rel", _in_names(n_in) + _out_names(n_out), tuple(params))


def _piece_signature(piece: BasicSet) -> frozenset:
    return frozenset(
        (c.kind, tuple(sorted(c.expr.coeffs.items())), c.expr.const)
        for c in piece.constraints
    )


def _eliminate_tracked(
    constraints: Sequence[Constraint], names: Iterable[str]
) -> tuple[list[Constraint], bool]:
    """Eliminate ``names``, reporting whether every elimination was exact.

    An elimination step is exact on the *integers* when the variable goes
    out through a unit-coefficient equality (back-substitution), or when
    every constraint mentioning it has a unit coefficient — then each
    Fourier-Motzkin lower/upper combination bounds the variable between two
    integral affine forms, so a rational solution always contains an integer
    one.  Otherwise the step may over-approximate and taints the flag.
    """
    exact = True
    current = [c.normalized() for c in constraints]
    for name in names:
        occurring = [c.expr.coeff(name) for c in current if c.expr.coeff(name) != 0]
        has_unit_equality = any(
            c.kind == EQ and abs(c.expr.coeff(name)) == 1 for c in current
        )
        all_unit = all(abs(coeff) == 1 for coeff in occurring)
        if occurring and not (has_unit_equality or all_unit):
            exact = False
        current = eliminate_variable(current, name)
        if any(c.is_trivially_false() for c in current):
            return [Constraint(LinExpr.constant(-1), GE)], exact
    return current, exact


class AffineRelation:
    """A finite union of basic affine relations between two named spaces."""

    __slots__ = ("in_space", "out_space", "pieces", "exact")

    def __init__(
        self,
        in_space: Space,
        out_space: Space,
        pieces: Iterable[BasicSet] = (),
        exact: bool = True,
    ):
        self.in_space = in_space
        self.out_space = out_space
        expected = _in_names(in_space.dim) + _out_names(out_space.dim)
        kept: list[BasicSet] = []
        seen: set[frozenset] = set()
        for piece in pieces:
            if piece.space.dims != expected:
                raise ValueError(
                    f"relation piece over dims {piece.space.dims}, expected {expected}"
                )
            if piece.has_trivially_false_constraint():
                continue
            signature = _piece_signature(piece)
            if signature in seen:
                continue
            seen.add(signature)
            kept.append(piece)
        self.pieces: tuple[BasicSet, ...] = tuple(kept)
        self.exact = bool(exact)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_function(
        cls,
        domain: ParamSet,
        function: AffineFunction,
        out_space: Space,
        exact: bool = True,
    ) -> "AffineRelation":
        """The functional relation ``{ x -> f(x) : x in domain }``."""
        if tuple(domain.space.dims) != tuple(function.domain_space.dims):
            raise ValueError("domain space and function domain disagree")
        if function.target_arity != out_space.dim:
            raise ValueError("function arity and output space disagree")
        n_in = domain.space.dim
        rename = {d: in_name(k) for k, d in enumerate(domain.space.dims)}
        substitution = {d: LinExpr.var(n) for d, n in rename.items()}
        pieces = []
        for piece in domain.pieces:
            params = _merge_params(piece.space.params, out_space.params)
            space = _piece_space(n_in, out_space.dim, params)
            constraints = [
                c.substitute(substitution) for c in piece.constraints
            ]
            for k, expr in enumerate(function.exprs):
                constraints.append(
                    Constraint(LinExpr.var(out_name(k)) - expr.substitute(substitution), EQ)
                )
            pieces.append(BasicSet(space, constraints))
        return cls(domain.space, out_space, pieces, exact=exact)

    @classmethod
    def identity(cls, space: Space) -> "AffineRelation":
        """The identity relation on the universe of ``space``."""
        return cls.from_function(
            ParamSet.universe(space), AffineFunction.identity(space), space
        )

    @classmethod
    def universal(cls, domain: ParamSet, range_: ParamSet) -> "AffineRelation":
        """The complete relation ``domain x range`` (every pair related)."""
        n_in, n_out = domain.space.dim, range_.space.dim
        in_sub = {d: LinExpr.var(in_name(k)) for k, d in enumerate(domain.space.dims)}
        out_sub = {d: LinExpr.var(out_name(k)) for k, d in enumerate(range_.space.dims)}
        pieces = []
        for dom_piece in domain.pieces:
            for ran_piece in range_.pieces:
                params = _merge_params(dom_piece.space.params, ran_piece.space.params)
                space = _piece_space(n_in, n_out, params)
                constraints = [c.substitute(in_sub) for c in dom_piece.constraints]
                constraints += [c.substitute(out_sub) for c in ran_piece.constraints]
                pieces.append(BasicSet(space, constraints))
        return cls(domain.space, range_.space, pieces)

    @classmethod
    def empty(cls, in_space: Space, out_space: Space) -> "AffineRelation":
        return cls(in_space, out_space, ())

    # -- queries -----------------------------------------------------------

    @property
    def n_in(self) -> int:
        return self.in_space.dim

    @property
    def n_out(self) -> int:
        return self.out_space.dim

    def is_obviously_empty(self) -> bool:
        return not self.pieces

    def is_empty(self, context: Sequence[Constraint] = ()) -> bool:
        """True when every piece is rationally (hence certainly) empty."""
        return all(basic_set_is_empty(p, context) for p in self.pieces)

    def contains_pair(
        self,
        point_in: Sequence[int],
        point_out: Sequence[int],
        params: Mapping[str, int],
    ) -> bool:
        """Membership test for a concrete pair under concrete parameters."""
        combined = tuple(point_in) + tuple(point_out)
        return any(p.contains_point(combined, params) for p in self.pieces)

    def enumerate_pairs(
        self, params: Mapping[str, int], bound: int = 2000
    ) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
        """All concrete pairs for concrete parameters (small instances only)."""
        n_in = self.n_in
        pairs: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
        for piece in self.pieces:
            for point in piece.enumerate_points(params, bound):
                pairs.add((point[:n_in], point[n_in:]))
        return pairs

    # -- algebra -----------------------------------------------------------

    def _check_same_shape(self, other: "AffineRelation", operation: str) -> None:
        if (
            self.in_space.dim != other.in_space.dim
            or self.out_space.dim != other.out_space.dim
            or self.in_space.tuple_name != other.in_space.tuple_name
            or self.out_space.tuple_name != other.out_space.tuple_name
        ):
            raise ValueError(
                f"{operation} of relations over different spaces: "
                f"{self.in_space.tuple_name}->{self.out_space.tuple_name} vs "
                f"{other.in_space.tuple_name}->{other.out_space.tuple_name}"
            )

    def union(self, other: "AffineRelation") -> "AffineRelation":
        self._check_same_shape(other, "union")
        return AffineRelation(
            self.in_space,
            self.out_space,
            self.pieces + other.pieces,
            exact=self.exact and other.exact,
        )

    def intersect(self, other: "AffineRelation") -> "AffineRelation":
        self._check_same_shape(other, "intersection")
        pieces = [a.intersect(b) for a in self.pieces for b in other.pieces]
        return AffineRelation(
            self.in_space, self.out_space, pieces, exact=self.exact and other.exact
        )

    def restrict(self, constraints: Iterable[Constraint]) -> "AffineRelation":
        """Intersect every piece with extra constraints over the internal
        ``__i*`` / ``__o*`` names (see :func:`in_name` / :func:`out_name`)."""
        extra = tuple(constraints)
        pieces = [p.add_constraints(extra) for p in self.pieces]
        return AffineRelation(self.in_space, self.out_space, pieces, exact=self.exact)

    def restrict_domain(self, domain: ParamSet) -> "AffineRelation":
        """Restrict to pairs whose input lies in ``domain``."""
        if tuple(domain.space.dims) != tuple(self.in_space.dims):
            raise ValueError("restrict_domain: dimension mismatch")
        sub = {d: LinExpr.var(in_name(k)) for k, d in enumerate(domain.space.dims)}
        pieces = []
        for piece in self.pieces:
            for dom_piece in domain.pieces:
                extra = [c.substitute(sub) for c in dom_piece.constraints]
                pieces.append(piece.add_constraints(extra))
        return AffineRelation(self.in_space, self.out_space, pieces, exact=self.exact)

    def restrict_range(self, range_: ParamSet) -> "AffineRelation":
        """Restrict to pairs whose output lies in ``range_``."""
        if tuple(range_.space.dims) != tuple(self.out_space.dims):
            raise ValueError("restrict_range: dimension mismatch")
        sub = {d: LinExpr.var(out_name(k)) for k, d in enumerate(range_.space.dims)}
        pieces = []
        for piece in self.pieces:
            for ran_piece in range_.pieces:
                extra = [c.substitute(sub) for c in ran_piece.constraints]
                pieces.append(piece.add_constraints(extra))
        return AffineRelation(self.in_space, self.out_space, pieces, exact=self.exact)

    def inverse(self) -> "AffineRelation":
        """The relation with input and output swapped."""
        n_in, n_out = self.n_in, self.n_out
        swap = {in_name(k): LinExpr.var(out_name(k)) for k in range(n_in)}
        swap.update({out_name(k): LinExpr.var(in_name(k)) for k in range(n_out)})
        pieces = []
        for piece in self.pieces:
            space = _piece_space(n_out, n_in, piece.space.params)
            pieces.append(
                BasicSet(space, [c.substitute(swap) for c in piece.constraints])
            )
        return AffineRelation(self.out_space, self.in_space, pieces, exact=self.exact)

    def compose(self, other: "AffineRelation") -> "AffineRelation":
        """Sequential composition: apply ``self`` first, then ``other``.

        ``self`` relates A -> B and ``other`` relates B -> C; the result
        relates A -> C.  The mid-space dimensions are eliminated.

        The result is always a sound *under*-approximation of the true
        composition: a piece whose elimination is not integer-exact (the
        Fourier-Motzkin relaxation would admit pairs with no integral
        mid-point) is dropped rather than kept, as is a piece whose
        constraint system blows up, and the piece product is truncated at
        :data:`MAX_COMPOSE_PIECES`.  Any loss clears the ``exact`` flag.
        This keeps every certificate built from compositions (subset tests
        against closures) sound.
        """
        if self.out_space.dim != other.in_space.dim:
            raise ValueError("composition arity mismatch")
        if self.out_space.tuple_name != other.in_space.tuple_name:
            raise ValueError(
                f"composition space mismatch: {self.out_space.tuple_name!r} "
                f"vs {other.in_space.tuple_name!r}"
            )
        n_mid = self.out_space.dim
        mid_names = [f"__m{k}" for k in range(n_mid)]
        left_sub = {out_name(k): LinExpr.var(mid_names[k]) for k in range(n_mid)}
        right_sub = {in_name(k): LinExpr.var(mid_names[k]) for k in range(n_mid)}

        pieces: list[BasicSet] = []
        exact = self.exact and other.exact
        truncated = False
        for left in self.pieces:
            for right in other.pieces:
                if len(pieces) >= MAX_COMPOSE_PIECES:
                    truncated = True
                    break
                params = _merge_params(left.space.params, right.space.params)
                constraints = [c.substitute(left_sub) for c in left.constraints]
                constraints += [c.substitute(right_sub) for c in right.constraints]
                try:
                    eliminated, elim_exact = _eliminate_tracked(constraints, mid_names)
                except EliminationError:
                    # Fourier-Motzkin blow-up: drop the piece (a sound
                    # under-approximation) and record the loss.
                    exact = False
                    continue
                if not elim_exact or len(eliminated) > MAX_PIECE_CONSTRAINTS:
                    # A rationally-relaxed piece would *over*-approximate
                    # (pairs without an integral mid-point); drop it.
                    exact = False
                    continue
                space = _piece_space(self.n_in, other.n_out, params)
                pieces.append(BasicSet(space, eliminated))
            if truncated:
                break
        return AffineRelation(
            self.in_space, other.out_space, pieces, exact=exact and not truncated
        )

    # -- projections -------------------------------------------------------

    def domain(self) -> ParamSet:
        """The set of inputs related to some output (rational projection,
        hence an over-approximation in general)."""
        return self._project(self.in_space, _out_names(self.n_out), _in_names(self.n_in))

    def range(self) -> ParamSet:
        """The set of outputs related to some input (over-approximation)."""
        return self._project(self.out_space, _in_names(self.n_in), _out_names(self.n_out))

    def _project(
        self, target_space: Space, remove: Sequence[str], keep: Sequence[str]
    ) -> ParamSet:
        rename = {k: d for k, d in zip(keep, target_space.dims)}
        sub = {k: LinExpr.var(d) for k, d in rename.items()}
        pieces = []
        for piece in self.pieces:
            eliminated, _ = _eliminate_tracked(piece.constraints, remove)
            space = Space(
                target_space.tuple_name,
                target_space.dims,
                _merge_params(piece.space.params, target_space.params),
            )
            pieces.append(BasicSet(space, [c.substitute(sub) for c in eliminated]))
        space = Space(target_space.tuple_name, target_space.dims, target_space.params)
        return ParamSet(pieces[0].space if pieces else space, pieces)

    def apply(self, pset: ParamSet) -> ParamSet:
        """Image of a set under the relation (over-approximation in general)."""
        return self.restrict_domain(pset).range()

    # -- ordering ----------------------------------------------------------

    def coalesce(self, context: Sequence[Constraint] = ()) -> "AffineRelation":
        """Drop rationally-empty pieces (cheap cleanup; exactness preserved)."""
        kept = [p for p in self.pieces if not basic_set_is_empty(p, context)]
        return AffineRelation(self.in_space, self.out_space, kept, exact=self.exact)

    def is_subset(
        self, other: "AffineRelation", context: Sequence[Constraint] = ()
    ) -> bool:
        """Certified inclusion test: True only when ``self - other`` is
        provably (rationally) empty under ``context``.

        Worklist algorithm: a part that is fully contained in a *single*
        piece of ``other`` is discharged directly (one negation sweep, no
        fragmentation); otherwise the part is split along the first piece
        that provably intersects it and the fragments are re-examined.  The
        step budget makes the test conservative: on overrun it answers
        False.
        """
        self._check_same_shape(other, "subset test")
        cuts = [
            (cut, _negate_basic(cut))
            for cut in other.pieces
            if len(cut.constraints) <= MAX_SUBSET_CUT_CONSTRAINTS
        ]
        work = [p for p in self.pieces if not basic_set_is_empty(p, context)]
        steps = 0
        while work:
            part = work.pop()
            steps += 1
            if steps > MAX_SUBSET_PIECES:
                return False
            if len(part.constraints) > MAX_PIECE_CONSTRAINTS:
                # Emptiness tests on a system this large can blow up inside
                # Fourier-Motzkin; give up (conservative).
                return False
            discharged = False
            fragments: list[BasicSet] | None = None
            for cut, negations in cuts:
                residue = []
                for negation in negations:
                    candidate = part.add_constraints(negation)
                    if candidate.has_trivially_false_constraint():
                        continue
                    if basic_set_is_empty(candidate, context):
                        continue
                    residue.append(candidate)
                if not residue:
                    discharged = True  # part is inside this single cut
                    break
                if fragments is None:
                    # Remember the first cut that provably intersects the
                    # part: splitting along it makes progress (the fragments
                    # are disjoint from the cut) if no single cut contains
                    # the part outright.
                    intersection = part.intersect(cut)
                    if not basic_set_is_empty(intersection, context):
                        fragments = residue
            if discharged:
                continue
            if fragments is None:
                return False  # no piece of `other` even intersects this part
            work.extend(fragments)
        return True

    def is_equal(
        self, other: "AffineRelation", context: Sequence[Constraint] = ()
    ) -> bool:
        """Certified equality (mutual certified inclusion)."""
        return self.is_subset(other, context) and other.is_subset(self, context)

    def __repr__(self) -> str:
        flag = "exact" if self.exact else "approx"
        return (
            f"AffineRelation({self.in_space.tuple_name} -> "
            f"{self.out_space.tuple_name}, pieces={len(self.pieces)}, {flag})"
        )


def translation_of_piece(relation: AffineRelation, piece: BasicSet) -> tuple[Fraction, ...] | None:
    """The constant offset ``b`` when the piece has the form ``x -> x + b``.

    Recognised syntactically: for every coordinate ``k`` there must be an
    equality whose support is exactly ``{__ik, __ok}`` with opposite unit
    coefficients.  Returns the integral offset vector, or None when the
    piece is not (recognisably) a translation.
    """
    if relation.n_in != relation.n_out:
        return None
    offsets: list[Fraction] = []
    for k in range(relation.n_in):
        i_name, o_name = in_name(k), out_name(k)
        found = None
        for constraint in piece.constraints:
            if constraint.kind != EQ:
                continue
            expr = constraint.expr
            if set(expr.coeffs) != {i_name, o_name}:
                continue
            out_coeff = expr.coeff(o_name)
            if out_coeff < 0:
                expr = -expr
                out_coeff = expr.coeff(o_name)
            if out_coeff != 1 or expr.coeff(i_name) != -1:
                continue
            offset = -expr.const
            if offset.denominator != 1:
                continue
            found = offset
            break
        if found is None:
            return None
        offsets.append(found)
    return tuple(offsets)
