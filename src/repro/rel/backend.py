"""Pluggable backends for relation closure / reachability queries.

Two backends answer the same queries:

* :class:`PurePythonBackend` — the default, built entirely on
  :mod:`repro.rel.relation` / :mod:`repro.rel.closure` (no dependencies
  beyond the standard library);
* :class:`IslBackend` — used automatically when `islpy
  <https://pypi.org/project/islpy/>`_ is importable.  It hands the union of
  dependence relations to ISL's ``transitive_closure`` (the exact engine the
  paper's Algorithm 5 uses) and decides the containment there; whenever ISL
  reports its closure as *inexact* the backend falls back to the pure
  engine, so installing ``islpy`` can only confirm decisions the pure
  backend makes or certify additional *true* facts — never flip a decision.

Selection: :func:`get_backend` honours the ``REPRO_REL_BACKEND`` environment
variable (``"pure"`` or ``"islpy"``) and otherwise auto-selects ``islpy``
when importable, ``pure`` otherwise.
"""

from __future__ import annotations

import os
from typing import Iterable, Protocol, Sequence, runtime_checkable

from ..sets import EQ, Constraint
from .closure import (
    ClosureResult,
    ReachabilityResult,
    check_universal_reachability,
    transitive_closure,
)
from .relation import AffineRelation, in_name, out_name

#: Environment variable forcing a backend (``pure`` or ``islpy``).
BACKEND_ENV = "REPRO_REL_BACKEND"


@runtime_checkable
class RelationBackend(Protocol):
    """One engine answering closure and universal-reachability queries."""

    name: str

    def transitive_closure(
        self, relation: AffineRelation, context: Sequence[Constraint] = ()
    ) -> ClosureResult:
        ...

    def check_reachability(
        self,
        edges: Iterable[AffineRelation],
        target_relation: AffineRelation,
        statement: str,
        context: Sequence[Constraint] = (),
    ) -> ReachabilityResult:
        ...


class PurePythonBackend:
    """The dependency-free default backend."""

    name = "pure"

    def transitive_closure(
        self, relation: AffineRelation, context: Sequence[Constraint] = ()
    ) -> ClosureResult:
        return transitive_closure(relation, context)

    def check_reachability(
        self,
        edges: Iterable[AffineRelation],
        target_relation: AffineRelation,
        statement: str,
        context: Sequence[Constraint] = (),
    ) -> ReachabilityResult:
        return check_universal_reachability(edges, target_relation, statement, context)


def islpy_available() -> bool:
    """True when the optional ``islpy`` package can be imported."""
    try:
        import islpy  # noqa: F401
    except ImportError:
        return False
    return True


def _isl_term(coeff, name: str) -> str:
    if coeff == 1:
        return name
    if coeff == -1:
        return f"-{name}"
    return f"{int(coeff)}{name}"


def _isl_constraint(constraint: Constraint, rename: dict[str, str]) -> str:
    expr = constraint.expr.scaled_to_integers()
    terms = [
        _isl_term(coeff, rename.get(name, name))
        for name, coeff in sorted(expr.coeffs.items())
    ]
    if expr.const != 0 or not terms:
        terms.append(str(int(expr.const)))
    body = " + ".join(terms).replace("+ -", "- ")
    op = "=" if constraint.kind == EQ else ">="
    return f"{body} {op} 0"


def _fresh_out_names(relation: AffineRelation, taken: set[str]) -> list[str]:
    names = []
    for index, dim in enumerate(relation.out_space.dims):
        candidate = dim if dim not in taken else f"{dim}_o{index}"
        while candidate in taken:
            candidate = candidate + "_"
        taken.add(candidate)
        names.append(candidate)
    return names


def relation_to_isl_str(relation: AffineRelation, params: Sequence[str]) -> str:
    """Serialize a relation as an ISL (union) map string."""
    in_dims = list(relation.in_space.dims)
    out_dims = _fresh_out_names(relation, set(in_dims) | set(params))
    rename = {in_name(k): d for k, d in enumerate(in_dims)}
    rename.update({out_name(k): d for k, d in enumerate(out_dims)})
    header = f"[{', '.join(params)}] -> " if params else ""
    pieces = []
    for piece in relation.pieces:
        conjuncts = [_isl_constraint(c, rename) for c in piece.constraints]
        condition = f" : {' and '.join(conjuncts)}" if conjuncts else ""
        pieces.append(
            f"{relation.in_space.tuple_name}[{', '.join(in_dims)}] -> "
            f"{relation.out_space.tuple_name}[{', '.join(out_dims)}]{condition}"
        )
    if not pieces:
        # An empty map over the right tuples.
        pieces = [
            f"{relation.in_space.tuple_name}[{', '.join(in_dims)}] -> "
            f"{relation.out_space.tuple_name}[{', '.join(out_dims)}] : 1 = 0"
        ]
    return header + "{ " + "; ".join(pieces) + " }"


def _context_params(
    edges: Sequence[AffineRelation], context: Sequence[Constraint]
) -> list[str]:
    params: list[str] = []
    for edge in edges:
        for piece in edge.pieces:
            for p in piece.space.params:
                if p not in params:
                    params.append(p)
    for constraint in context:
        for name in constraint.expr.names():
            if name not in params:
                params.append(name)
    return params


class IslBackend:
    """Closure/reachability through ``islpy``, with a pure-engine fallback.

    ISL's transitive closure reports whether its result is exact.  Only an
    exact ISL closure is trusted for a decision (in either direction); an
    inexact one delegates to :class:`PurePythonBackend`, keeping decisions
    between environments with and without ``islpy`` consistent.
    """

    name = "islpy"

    def __init__(self):
        import islpy

        self._isl = islpy
        self._pure = PurePythonBackend()

    @staticmethod
    def _closure_with_flag(umap):
        result = umap.transitive_closure()
        if isinstance(result, tuple):
            closure, exact = result
            return closure, bool(exact)
        return result, False

    def _param_context_set(self, params: Sequence[str], context: Sequence[Constraint]):
        if not params:
            return None
        conjuncts = [_isl_constraint(c, {}) for c in context] or ["0 = 0"]
        text = f"[{', '.join(params)}] -> {{ : {' and '.join(conjuncts)} }}"
        return self._isl.Set(text)

    def transitive_closure(
        self, relation: AffineRelation, context: Sequence[Constraint] = ()
    ) -> ClosureResult:
        # The pure engine owns the AffineRelation-typed closure API; ISL is
        # only consulted for the exactness certificate of the decision-level
        # queries (converting an ISL map back would add nothing here).
        return self._pure.transitive_closure(relation, context)

    def check_reachability(
        self,
        edges: Iterable[AffineRelation],
        target_relation: AffineRelation,
        statement: str,
        context: Sequence[Constraint] = (),
    ) -> ReachabilityResult:
        edge_list = list(edges)
        try:
            params = _context_params(edge_list, context)
            pieces = [relation_to_isl_str(edge, params) for edge in edge_list]
            union = None
            for text in pieces:
                umap = self._isl.UnionMap(text)
                union = umap if union is None else union.union(umap)
            if union is None:
                return ReachabilityResult(False, True, 0)
            closure, exact = self._closure_with_flag(union)
            if not exact:
                return self._pure.check_reachability(
                    edge_list, target_relation, statement, context
                )
            target = self._isl.UnionMap(relation_to_isl_str(target_relation, params))
            assumptions = self._param_context_set(params, context)
            if assumptions is not None:
                closure = closure.intersect_params(assumptions)
                target = target.intersect_params(assumptions)
            return ReachabilityResult(bool(target.is_subset(closure)), True, 0)
        except Exception:
            # Any conversion or ISL-level failure falls back to the pure
            # engine rather than failing the derivation.
            return self._pure.check_reachability(
                edge_list, target_relation, statement, context
            )


_BACKEND_CACHE: dict[str, RelationBackend] = {}


def get_backend(name: str | None = None) -> RelationBackend:
    """Resolve a backend by name, env override, or auto-detection.

    ``name=None`` reads ``$REPRO_REL_BACKEND``; when that is unset too, the
    ``islpy`` backend is auto-selected if importable, else the pure one.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or ("islpy" if islpy_available() else "pure")
    if name in _BACKEND_CACHE:
        return _BACKEND_CACHE[name]
    if name == "pure":
        backend: RelationBackend = PurePythonBackend()
    elif name == "islpy":
        if not islpy_available():
            raise RuntimeError(
                "the 'islpy' relation backend was requested but islpy is not installed"
            )
        backend = IslBackend()
    else:
        raise KeyError(f"unknown relation backend {name!r} (expected 'pure' or 'islpy')")
    _BACKEND_CACHE[name] = backend
    return backend
