"""Transitive closure of affine relations, with an exactness certificate.

This is the engine behind the Algorithm-5-faithful wavefront validation: the
paper establishes the completeness hypothesis of Corollary 6.3 with ISL
relation algebra including transitive closures; here the same queries are
answered on :class:`~repro.rel.relation.AffineRelation` unions.

Closure semantics
-----------------

``transitive_closure(R)`` returns a :class:`ClosureResult` whose relation is

* **exact** (``exact=True``): equal to ``R+``, guaranteed for
  *translation-family* relations — unions of pieces ``x -> x + b`` with at
  least one unit offset coordinate over convex domains, which covers every
  PolyBench chain dependence — and for relations whose path lengths are
  provably bounded (the saturation loop reaches a certified fixpoint);
* otherwise an **approximation** (``exact=False``): a superset of ``R+`` in
  the default ``direction="over"`` mode, or a subset in ``direction="under"``
  mode (truncated path saturation).

The under-approximating mode is what makes the reachability *certificate*
sound: any pair contained in an under-approximation of ``R+`` is certainly
reachable, so a positive wavefront validation never relies on an
over-approximation.

Reachability on a graph of relations
------------------------------------

``check_universal_reachability`` runs a Kleene/Floyd-Warshall sweep over the
DFG's statement nodes, starring each pivot's self-relation with the closure
engine, and tests the universal slice-step relation for inclusion after
every pivot.  The early exit matters for the exactness report: the
certificate for the wavefront examples (Example 2, durbin) is established
from exactly-closed chain relations before any harder self-relation (e.g. a
reflection dependence) would force an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..sets import EQ, GE, BasicSet, Constraint, EliminationError, LinExpr, Space
from .. import perf
from .relation import (
    MAX_PIECE_CONSTRAINTS,
    AffineRelation,
    _eliminate_tracked,
    in_name,
    out_name,
    translation_of_piece,
)

#: Saturation rounds before the closure gives up on reaching a fixpoint.
MAX_SATURATION_ROUNDS = 5

#: Piece budget of a closure / reachability relation; beyond it the engine
#: truncates (under mode) or widens to the universal relation (over mode).
MAX_CLOSURE_PIECES = 48

_STEP_NAME = "__k"


@dataclass(frozen=True)
class ClosureResult:
    """A transitive closure plus its exactness certificate.

    ``exact`` means ``relation`` equals the true transitive closure; when
    False, ``relation`` over-approximates (``direction="over"``) or
    under-approximates (``direction="under"``) it.
    """

    relation: AffineRelation
    exact: bool
    rounds: int = 0


@dataclass(frozen=True)
class ReachabilityResult:
    """Outcome of a universal-reachability (wavefront hypothesis) query.

    ``holds`` is a *certificate*: True only when the target relation was
    proven to be contained in an (under-approximated, hence sound) closure
    of the dependence relations.  ``exact`` reports whether every closure
    used to establish — or, for a negative answer, to refute — the
    containment was exact.
    """

    holds: bool
    exact: bool
    pivots: int = 0


def _self_check(relation: AffineRelation) -> None:
    if relation.n_in != relation.n_out:
        raise ValueError("transitive closure requires equal input/output arity")
    if relation.in_space.tuple_name != relation.out_space.tuple_name:
        raise ValueError("transitive closure requires a self-relation")


def _translation_piece_closure(
    relation: AffineRelation, piece: BasicSet, delta: tuple[Fraction, ...]
) -> tuple[BasicSet, bool]:
    """Parametric closure of one translation piece ``{x -> x + b : x in D}``.

    The closure is ``{x -> x + k b : k >= 1, x in D, x + (k-1) b in D}``;
    since ``D`` is a single (convex) basic set, every intermediate source
    point lies in ``D`` as well, so this is the exact ``piece+`` whenever
    the step counter ``k`` can be eliminated through a unit-coefficient
    equality — i.e. whenever some ``|b_j| = 1``.
    """
    if all(d == 0 for d in delta):
        return piece, True
    n = relation.n_in
    identify = {out_name(j): LinExpr({in_name(j): 1}, delta[j]) for j in range(n)}
    domain_constraints = [c.substitute(identify) for c in piece.constraints]
    shift = {
        in_name(j): LinExpr({in_name(j): 1, _STEP_NAME: delta[j]}, -delta[j])
        for j in range(n)
        if delta[j] != 0
    }
    last_source_constraints = [c.substitute(shift) for c in domain_constraints]
    constraints = list(domain_constraints) + last_source_constraints
    for j in range(n):
        constraints.append(
            Constraint(
                LinExpr({out_name(j): 1, in_name(j): -1, _STEP_NAME: -delta[j]}), EQ
            )
        )
    constraints.append(Constraint(LinExpr({_STEP_NAME: 1}, -1), GE))
    eliminated, exact = _eliminate_tracked(constraints, [_STEP_NAME])
    if len(eliminated) > MAX_PIECE_CONSTRAINTS:
        raise EliminationError("translation closure piece too large")
    return BasicSet(piece.space, eliminated), exact


def _truncated_powers(
    relation: AffineRelation,
    context: Sequence[Constraint],
    rounds: int = MAX_SATURATION_ROUNDS,
) -> AffineRelation:
    """``R u R^2 u ... u R^rounds`` — always a sound under-approximation of R+."""
    total = relation
    power = relation
    for _ in range(rounds - 1):
        power = power.compose(relation).coalesce(context)
        if power.is_obviously_empty():
            break
        total = total.union(power)
        if len(total.pieces) > MAX_CLOSURE_PIECES:
            total = AffineRelation(
                total.in_space,
                total.out_space,
                total.pieces[:MAX_CLOSURE_PIECES],
                exact=False,
            )
            break
    return total


def _universal_over(relation: AffineRelation) -> AffineRelation:
    """``domain(R) x range(R)`` — always a superset of ``R+``."""
    widened = AffineRelation.universal(relation.domain(), relation.range())
    return AffineRelation(
        widened.in_space, widened.out_space, widened.pieces, exact=False
    )


#: Fixpoint certification is only attempted on relations this small: subset
#: tests on bloated unions are quadratic in pieces x constraints, and real
#: fixpoints (the only ones worth certifying) show up early and small.
MAX_FIXPOINT_PIECES = 16


def _fixpoint_checkable(step: AffineRelation, total: AffineRelation) -> bool:
    return (
        len(step.pieces) <= MAX_FIXPOINT_PIECES
        and len(total.pieces) <= MAX_FIXPOINT_PIECES
        and all(
            len(piece.constraints) <= MAX_PIECE_CONSTRAINTS // 2
            for relation in (step, total)
            for piece in relation.pieces
        )
    )


def _saturate(
    seed: AffineRelation,
    generator: AffineRelation,
    context: Sequence[Constraint],
    direction: str,
    exact_if_fixpoint: bool,
    fallback_base: AffineRelation,
) -> ClosureResult:
    """Union compositions of ``seed`` with ``generator`` until a certified
    fixpoint, a piece budget overrun, or the round limit."""
    total = seed
    for rounds in range(1, MAX_SATURATION_ROUNDS + 1):
        if not (exact_if_fixpoint and total.exact):
            # Exactness is already lost, so no fixpoint can certify: the
            # over-mode answer is the universal superset either way, and in
            # under mode the accumulated (sound) subset is as good as any
            # further rounds would make it.  Stop paying for saturation.
            if direction == "over":
                return ClosureResult(_universal_over(fallback_base), False, rounds)
            return ClosureResult(_cap_pieces(total), False, rounds)
        step = total.compose(generator).coalesce(context)
        may_certify = exact_if_fixpoint and total.exact and step.exact
        # An empty step certifies the fixpoint only when it is exact: an
        # inexact empty step just means every composed piece was dropped.
        if (step.is_obviously_empty() and step.exact) or (
            may_certify
            and _fixpoint_checkable(step, total)
            and step.is_subset(total, context)
        ):
            exact = exact_if_fixpoint and total.exact
            if direction == "over" and not exact:
                # Compositions may have dropped pieces, so `total` is no
                # longer guaranteed to be a superset of R+; the over-mode
                # contract requires one.
                return ClosureResult(_universal_over(fallback_base), False, rounds)
            return ClosureResult(total, exact, rounds)
        total = total.union(step).coalesce(context)
        if len(total.pieces) > MAX_CLOSURE_PIECES:
            break
    if direction == "over":
        return ClosureResult(_universal_over(fallback_base), False, MAX_SATURATION_ROUNDS)
    truncated = AffineRelation(
        total.in_space,
        total.out_space,
        total.pieces[:MAX_CLOSURE_PIECES],
        exact=False,
    )
    return ClosureResult(truncated, False, MAX_SATURATION_ROUNDS)


@perf.timed("rel-closure")
def transitive_closure(
    relation: AffineRelation,
    context: Sequence[Constraint] = (),
    direction: str = "over",
) -> ClosureResult:
    """Transitive closure ``R+`` with an exactness certificate.

    ``direction`` selects what an inexact result means: ``"over"`` (the
    default, matching ISL's contract) returns a superset of ``R+``;
    ``"under"`` returns a subset (truncated saturation), the sound direction
    for positive reachability certificates.
    """
    if direction not in ("over", "under"):
        raise ValueError(f"unknown closure direction {direction!r}")
    _self_check(relation)
    base = relation.coalesce(context)
    if not base.pieces:
        return ClosureResult(base, True)

    deltas = [translation_of_piece(base, piece) for piece in base.pieces]
    if all(delta is not None for delta in deltas):
        closed_pieces: list[BasicSet] = []
        exact = base.exact
        for piece, delta in zip(base.pieces, deltas):
            try:
                closed, piece_exact = _translation_piece_closure(base, piece, delta)
            except EliminationError:
                closed, piece_exact = None, False
            if not piece_exact and direction == "under":
                # The k-eliminated piece may over-approximate: fall back to
                # finitely many powers of this piece, which cannot.
                single = AffineRelation(base.in_space, base.out_space, [piece])
                closed_pieces.extend(
                    _truncated_powers(single, context).pieces
                )
                exact = False
                continue
            if closed is None:
                return ClosureResult(_universal_over(base), False, 0)
            closed_pieces.append(closed)
            exact = exact and piece_exact
        # The relation's own flag must agree with the closure certificate:
        # an inexact piece closure makes the union approximate (in the
        # direction of the requested mode), never silently "exact".
        candidate = AffineRelation(
            base.in_space, base.out_space, closed_pieces, exact=exact
        )
        if len(base.pieces) == 1:
            # A single translation family is already transitively closed.
            return ClosureResult(candidate, exact, 0)
        return _saturate(candidate, candidate, context, direction, exact, base)

    return _saturate(base, base, context, direction, base.exact, base)


def reflexive_closure(relation: AffineRelation) -> AffineRelation:
    """``R u Id`` (identity over the whole space)."""
    _self_check(relation)
    return relation.union(AffineRelation.identity(relation.in_space))


# -- reachability over a graph of relations ---------------------------------

#: Rounds of the path-saturation sweep: each round extends every known path
#: by one (closed) edge, so rounds bound the number of *inter-statement*
#: hops a certificate may use — chain runs inside a statement cost nothing,
#: they are pre-closed into the self-edges.
MAX_PATH_ROUNDS = 8


def _group_edges(
    edges: Iterable[AffineRelation],
) -> tuple[dict[tuple[str, str], AffineRelation], dict[str, Space], list[str]]:
    grouped: dict[tuple[str, str], AffineRelation] = {}
    spaces: dict[str, Space] = {}
    for edge in edges:
        key = (edge.in_space.tuple_name, edge.out_space.tuple_name)
        spaces.setdefault(key[0], edge.in_space)
        spaces.setdefault(key[1], edge.out_space)
        grouped[key] = grouped[key].union(edge) if key in grouped else edge
    nodes = sorted(spaces)
    return grouped, spaces, nodes


def _cap_pieces(relation: AffineRelation) -> AffineRelation:
    if len(relation.pieces) <= MAX_CLOSURE_PIECES:
        return relation
    return AffineRelation(
        relation.in_space,
        relation.out_space,
        relation.pieces[:MAX_CLOSURE_PIECES],
        exact=False,
    )


#: Self-relations are pre-closed only when they are small translation
#: families — the case the closure engine handles exactly and cheaply.
MAX_SELF_CLOSURE_PIECES = 8


def _closed_edge_graph(
    edges: Iterable[AffineRelation], context: Sequence[Constraint]
) -> tuple[dict[tuple[str, str], AffineRelation], dict[str, Space], list[str]]:
    """Group edges by (source, sink) tuple, closing translation self-edges.

    A node's self-relation made of translation pieces (the chain
    dependences) is replaced by its exact transitive closure, so one "hop"
    of the saturation sweep walks an arbitrarily long chain run.  Harder
    self-relations (e.g. durbin's reflection dependence) are kept as raw
    edges: the sweep still under-approximates their repetition through its
    rounds, and certificates that do not walk through them stay exact —
    the closure's exactness is folded into the edge relation's ``exact``
    flag, which propagates through compositions per path.
    """
    grouped, spaces, nodes = _group_edges(edges)
    closed: dict[tuple[str, str], AffineRelation] = {}
    for key, relation in grouped.items():
        relation = relation.coalesce(context)
        if key[0] == key[1] and len(relation.pieces) <= MAX_SELF_CLOSURE_PIECES and all(
            translation_of_piece(relation, piece) is not None
            for piece in relation.pieces
        ):
            result = transitive_closure(relation, context, direction="under")
            relation = result.relation
            if not result.exact and relation.exact:
                relation = AffineRelation(
                    relation.in_space, relation.out_space, relation.pieces, exact=False
                )
        if not relation.is_obviously_empty():
            closed[key] = relation
    return closed, spaces, nodes


def _saturate_paths(
    closed: dict[tuple[str, str], AffineRelation],
    source: str,
    context: Sequence[Constraint],
    on_round=None,
) -> tuple[dict[str, AffineRelation], bool]:
    """Accumulate relations ``source -> node`` for paths of length >= 1.

    Bounded breadth-first saturation over the closed edge graph; always a
    sound under-approximation of true reachability.  Returns the relation
    map and whether a certified fixpoint was reached (then the map *is*
    complete reachability, up to the exactness of the edge closures).
    ``on_round(paths)`` may return True to stop early.
    """
    paths: dict[str, AffineRelation] = {}
    lossy = False
    for (a, b), relation in closed.items():
        if a != source:
            continue
        paths[b] = paths[b].union(relation).coalesce(context) if b in paths else relation
        paths[b] = _cap_pieces(paths[b])
    if on_round is not None and on_round(paths):
        return paths, False
    for _ in range(MAX_PATH_ROUNDS):
        changed: set[str] = set()
        for (a, b), relation in closed.items():
            if a not in paths:
                continue
            if b in paths and len(paths[b].pieces) >= MAX_CLOSURE_PIECES:
                lossy = True  # piece budget for this node is exhausted
                continue
            extended = paths[a].compose(relation).coalesce(context)
            if not extended.exact:
                lossy = True  # the composition dropped pieces
            if extended.is_obviously_empty():
                continue
            if b in paths:
                # Union + signature dedup: a round that adds no
                # syntactically new piece anywhere is a genuine fixpoint
                # (every extension collapsed into an existing piece).
                combined = paths[b].union(extended).coalesce(context)
                if len(combined.pieces) == len(paths[b].pieces):
                    continue
            else:
                combined = extended
            paths[b] = _cap_pieces(combined)
            changed.add(b)
        if not changed:
            return paths, not lossy
        if on_round is not None and source in changed and on_round(paths):
            return paths, False
    return paths, False


@perf.timed("rel-closure")
def graph_reachability(
    edges: Iterable[AffineRelation],
    source: str,
    target: str,
    context: Sequence[Constraint] = (),
) -> ClosureResult:
    """All paths of length >= 1 from tuple ``source`` to tuple ``target``.

    The result is always a sound *under*-approximation of the true
    reachability relation; ``exact`` is True only when the saturation
    reached a certified fixpoint and every edge closure and composition
    stayed exact — then the relation is complete reachability.
    """
    closed, spaces, _nodes = _closed_edge_graph(edges, context)
    if source not in spaces or target not in spaces:
        raise KeyError(f"unknown tuple in reachability query: {source!r}/{target!r}")
    paths, fixpoint = _saturate_paths(closed, source, context)
    result = paths.get(target)
    if result is None:
        result = AffineRelation.empty(spaces[source], spaces[target])
    edge_exact = all(relation.exact for relation in closed.values())
    return ClosureResult(result, fixpoint and edge_exact and result.exact)


@perf.timed("rel-closure")
def check_universal_reachability(
    edges: Iterable[AffineRelation],
    target_relation: AffineRelation,
    statement: str,
    context: Sequence[Constraint] = (),
) -> ReachabilityResult:
    """Certify ``target_relation`` subset-of reachability(statement -> statement).

    The containment is tested against a sound under-approximation after
    every saturation round, so ``holds=True`` is a genuine certificate (the
    pairs are reachable) and never relies on an over-approximation.  On a
    positive answer ``exact`` reports whether every closure and composition
    the certifying relation was built from stayed exact; on a negative
    answer it is True only when the sweep reached a certified fixpoint with
    exact closures — i.e. the refutation is exact too.
    """
    closed, spaces, _nodes = _closed_edge_graph(edges, context)
    if statement not in spaces:
        return ReachabilityResult(False, True, 0)
    rounds = 0
    outcome: dict[str, bool] = {}

    def certified(paths: dict[str, AffineRelation]) -> bool:
        nonlocal rounds
        rounds += 1
        current = paths.get(statement)
        if current is not None and target_relation.is_subset(current, context):
            outcome["exact"] = current.exact
            return True
        return False

    paths, fixpoint = _saturate_paths(closed, statement, context, on_round=certified)
    if "exact" in outcome:
        return ReachabilityResult(True, outcome["exact"], rounds)
    edge_exact = all(relation.exact for relation in closed.values())
    exact_refutation = fixpoint and edge_exact and all(
        relation.exact for relation in paths.values()
    )
    return ReachabilityResult(False, exact_refutation, rounds)
