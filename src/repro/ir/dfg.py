"""The Data-flow graph (DFG) of Sec. 3.4.

The DFG is the compact, parametric representation of the CDAG on which all
IOLB reasoning happens: one vertex per statement or input array, one edge per
flow dependence, each edge carrying its affine relation (stored in inverse
"read function" form, see :class:`repro.ir.program.FlowDep`).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .program import AffineProgram, FlowDep


@dataclass
class DFG:
    """Data-flow graph over statements and input arrays of a program."""

    program: AffineProgram
    graph: nx.MultiDiGraph

    @classmethod
    def from_program(cls, program: AffineProgram) -> "DFG":
        graph = nx.MultiDiGraph()
        for array in program.arrays.values():
            graph.add_node(array.name, kind="array", domain=array.domain)
        for statement in program.statements.values():
            graph.add_node(statement.name, kind="statement", domain=statement.domain)
        for dep in program.dependences:
            graph.add_edge(dep.source, dep.sink, dep=dep)
        return cls(program, graph)

    # -- queries -----------------------------------------------------------

    def statement_nodes(self) -> list[str]:
        return [n for n, data in self.graph.nodes(data=True) if data["kind"] == "statement"]

    def array_nodes(self) -> list[str]:
        return [n for n, data in self.graph.nodes(data=True) if data["kind"] == "array"]

    def edges_into(self, node: str) -> list[FlowDep]:
        return [data["dep"] for _, _, data in self.graph.in_edges(node, data=True)]

    def edges_from(self, node: str) -> list[FlowDep]:
        return [data["dep"] for _, _, data in self.graph.out_edges(node, data=True)]

    def predecessors(self, node: str) -> list[str]:
        return list(self.graph.predecessors(node))

    def successors(self, node: str) -> list[str]:
        return list(self.graph.successors(node))

    def is_statement(self, node: str) -> bool:
        return self.graph.nodes[node]["kind"] == "statement"

    def topological_statements(self) -> list[str]:
        """Statements in a topological order of the statement-level condensation.

        Self-loops and cycles between statements (which exist as soon as a
        statement depends on another iteration of itself or of a mutually
        recursive statement) are collapsed, so the result is a valid
        processing order for path searches.
        """
        condensation = nx.condensation(nx.DiGraph(self.graph))
        order: list[str] = []
        for component in nx.topological_sort(condensation):
            members = condensation.nodes[component]["members"]
            order.extend(sorted(m for m in members if self.is_statement(m)))
        return order

    def __repr__(self) -> str:
        return f"DFG({self.program.name!r}, nodes={self.graph.number_of_nodes()}, edges={self.graph.number_of_edges()})"
