"""Program representation: affine programs, data-flow graphs and explicit CDAGs."""

from .cdag import CDAG, Vertex, expand_count, reset_expand_count
from .dfg import DFG
from .program import AffineProgram, Array, ArrayAccess, FlowDep, ProgramBuilder, Statement

__all__ = [
    "AffineProgram",
    "Array",
    "ArrayAccess",
    "CDAG",
    "DFG",
    "FlowDep",
    "ProgramBuilder",
    "Statement",
    "Vertex",
    "expand_count",
    "reset_expand_count",
]
