"""Explicit CDAG expansion for concrete parameter values.

The CDAG (Def. 3.1) is the fully unrolled computation graph: one vertex per
statement instance and per input-array element, one edge per value flow.  The
paper only ever manipulates its compact DFG representation; we additionally
materialise it for *small* parameter instances, which gives us

* a ground truth for testing the polyhedral machinery (domains, dependences,
  In-sets) against brute-force enumeration, and
* the substrate on which the red-white pebble game and the cache simulators of
  :mod:`repro.pebble` run (the Sec. 8.2 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from .program import AffineProgram

Vertex = tuple[str, tuple[int, ...]]

#: Process-wide count of CDAG expansions.  The symbolic wavefront validation
#: makes the default derivation pipeline expansion-free; tests assert that by
#: sampling this counter around a suite run.
_expansions = 0


def expand_count() -> int:
    """Number of CDAG expansions performed in this process since the last reset."""
    return _expansions


def reset_expand_count() -> int:
    """Reset the expansion counter; returns the prior count."""
    global _expansions
    previous = _expansions
    _expansions = 0
    return previous


@dataclass
class CDAG:
    """An explicit computational DAG for one parameter instance."""

    program: AffineProgram
    params: dict[str, int]
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    inputs: set[Vertex] = field(default_factory=set)

    @classmethod
    def expand(cls, program: AffineProgram, params: Mapping[str, int]) -> "CDAG":
        """Materialise the CDAG of ``program`` for the given parameter values."""
        global _expansions
        _expansions += 1
        params = program.instance_values(params)
        cdag = cls(program, dict(params))
        graph = cdag.graph

        domains: dict[str, set[tuple[int, ...]]] = {}
        for array in program.arrays.values():
            points = set(array.domain.enumerate_points(params))
            domains[array.name] = points
            if array.is_input:
                for point in points:
                    vertex = (array.name, point)
                    graph.add_node(vertex, kind="input")
                    cdag.inputs.add(vertex)
        for statement in program.statements.values():
            points = set(statement.domain.enumerate_points(params))
            domains[statement.name] = points
            for point in points:
                graph.add_node((statement.name, point), kind="statement")

        for dep in program.dependences:
            source_points = domains.get(dep.source, set())
            for sink_point in dep.domain.enumerate_points(params):
                if sink_point not in domains[dep.sink]:
                    continue
                source_point = dep.function.apply_to_point(sink_point, params)
                if source_point in source_points:
                    graph.add_edge((dep.source, source_point), (dep.sink, sink_point))
        return cdag

    # -- queries -----------------------------------------------------------

    def compute_vertices(self) -> list[Vertex]:
        """All non-input vertices (the set ``V \\ I``)."""
        return [v for v, data in self.graph.nodes(data=True) if data["kind"] == "statement"]

    def statement_vertices(self, statement: str) -> list[Vertex]:
        return [v for v in self.compute_vertices() if v[0] == statement]

    def in_set(self, vertices: set[Vertex]) -> set[Vertex]:
        """In(P): vertices outside P with a successor inside P (Def. 3.4)."""
        result = set()
        for vertex in vertices:
            for predecessor in self.graph.predecessors(vertex):
                if predecessor not in vertices:
                    result.add(predecessor)
        return result

    def sources(self, vertices: set[Vertex]) -> set[Vertex]:
        """Sources(P): vertices of P with no predecessor inside P (Def. 3.8)."""
        result = set()
        for vertex in vertices:
            if all(p not in vertices for p in self.graph.predecessors(vertex)):
                result.add(vertex)
        return result

    def topological_order(self) -> list[Vertex]:
        return list(nx.topological_sort(self.graph))

    def reachable_from(self, vertex: Vertex) -> set[Vertex]:
        return set(nx.descendants(self.graph, vertex))

    def is_valid_schedule(self, schedule: list[Vertex]) -> bool:
        """True when the schedule executes every compute vertex after its operands."""
        position: dict[Hashable, int] = {v: i for i, v in enumerate(schedule)}
        compute = set(self.compute_vertices())
        if set(schedule) != compute:
            return False
        for vertex in schedule:
            for predecessor in self.graph.predecessors(vertex):
                if predecessor in compute and position[predecessor] >= position[vertex]:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"CDAG({self.program.name!r}, params={self.params}, "
            f"|V|={self.graph.number_of_nodes()}, |E|={self.graph.number_of_edges()})"
        )
