"""Affine program representation (the PET-substitute frontend).

An :class:`AffineProgram` captures exactly what IOLB needs from the polyhedral
frontend:

* the symbolic *parameters* (problem sizes),
* the *input arrays* with their index domains (for compulsory-miss accounting
  — the ``input_size(G)`` term of Algorithm 6),
* the *statements* with their parametric iteration domains and a per-instance
  operation count (to compute operational intensity),
* the *flow dependences* in single-assignment form: for each sink instance,
  the affine function giving the unique source instance it reads
  (the inverse of the edge relation ``R_d`` of Sec. 3.4).

Programs are most conveniently constructed with :class:`ProgramBuilder`, using
ISL-like strings for domains and dependence relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import sympy

from ..sets import (
    AffineFunction,
    LinExpr,
    ParamSet,
    card,
    card_upper,
    parse_function,
    parse_set,
)


@dataclass(frozen=True)
class Array:
    """An array of the program, with its (parametric) index domain."""

    name: str
    domain: ParamSet
    is_input: bool = True
    is_output: bool = False

    @property
    def space(self):
        return self.domain.space


@dataclass(frozen=True)
class ArrayAccess:
    """An affine array access ``array[expr_1, ..., expr_k]`` from a statement."""

    array: str
    exprs: tuple[LinExpr, ...]
    is_write: bool = False


@dataclass
class Statement:
    """A program statement with its parametric iteration domain."""

    name: str
    domain: ParamSet
    flops: int = 1
    accesses: tuple[ArrayAccess, ...] = field(default=())

    @property
    def dims(self) -> tuple[str, ...]:
        return self.domain.space.dims

    @property
    def space(self):
        return self.domain.space

    def reads(self) -> list[ArrayAccess]:
        return [a for a in self.accesses if not a.is_write]

    def writes(self) -> list[ArrayAccess]:
        return [a for a in self.accesses if a.is_write]


@dataclass(frozen=True)
class FlowDep:
    """A flow dependence edge of the DFG, in inverse-function (read) form.

    ``function`` maps each sink instance to the unique source instance
    (statement instance or input-array element) whose value it consumes, and
    ``domain`` is the sink sub-domain on which the dependence applies.
    """

    source: str
    sink: str
    function: AffineFunction
    domain: ParamSet
    label: str = ""

    def __post_init__(self) -> None:
        if tuple(self.function.domain_space.dims) != tuple(self.domain.space.dims):
            raise ValueError(
                f"dependence {self.label or self.source + '->' + self.sink}: "
                "function domain and dependence domain disagree"
            )


class AffineProgram:
    """A whole affine program: arrays, statements and flow dependences."""

    def __init__(
        self,
        name: str,
        params: Sequence[str],
        arrays: Iterable[Array] = (),
        statements: Iterable[Statement] = (),
        dependences: Iterable[FlowDep] = (),
    ):
        self.name = name
        self.params: tuple[str, ...] = tuple(params)
        self.arrays: dict[str, Array] = {a.name: a for a in arrays}
        self.statements: dict[str, Statement] = {s.name: s for s in statements}
        self.dependences: list[FlowDep] = list(dependences)
        self._validate()

    def _validate(self) -> None:
        for dep in self.dependences:
            if dep.sink not in self.statements:
                raise ValueError(f"dependence sink {dep.sink!r} is not a statement")
            if dep.source not in self.statements and dep.source not in self.arrays:
                raise ValueError(
                    f"dependence source {dep.source!r} is neither a statement nor an array"
                )
            sink_dims = self.statements[dep.sink].dims
            if tuple(dep.function.domain_space.dims) != tuple(sink_dims):
                raise ValueError(
                    f"dependence into {dep.sink!r} uses dims "
                    f"{dep.function.domain_space.dims}, expected {sink_dims}"
                )

    # -- queries -----------------------------------------------------------

    def statement(self, name: str) -> Statement:
        return self.statements[name]

    def array(self, name: str) -> Array:
        return self.arrays[name]

    def input_arrays(self) -> list[Array]:
        return [a for a in self.arrays.values() if a.is_input]

    def deps_into(self, sink: str) -> list[FlowDep]:
        return [d for d in self.dependences if d.sink == sink]

    def deps_from(self, source: str) -> list[FlowDep]:
        return [d for d in self.dependences if d.source == source]

    def input_size(self) -> sympy.Expr:
        """Total number of input array elements (compulsory misses)."""
        total = sympy.Integer(0)
        for array in self.input_arrays():
            total += card(array.domain)
        return sympy.expand(total)

    def total_flops(self) -> sympy.Expr:
        """Total number of arithmetic operations of the program."""
        total = sympy.Integer(0)
        for statement in self.statements.values():
            total += statement.flops * card(statement.domain)
        return sympy.expand(total)

    def instance_values(self, instance: Mapping[str, int]) -> dict[str, int]:
        """Check and normalise a parameter instance (all parameters bound)."""
        missing = [p for p in self.params if p not in instance]
        if missing:
            raise KeyError(f"missing parameter values for {missing}")
        return {p: int(instance[p]) for p in self.params}

    def __repr__(self) -> str:
        return (
            f"AffineProgram({self.name!r}, params={self.params}, "
            f"statements={list(self.statements)}, arrays={list(self.arrays)}, "
            f"deps={len(self.dependences)})"
        )


class ProgramBuilder:
    """Fluent construction of :class:`AffineProgram` from ISL-like strings."""

    def __init__(self, name: str, params: Sequence[str]):
        self.name = name
        self.params = tuple(params)
        self._arrays: list[Array] = []
        self._statements: list[Statement] = []
        self._dependences: list[FlowDep] = []

    def add_array(self, domain: str, is_input: bool = True, is_output: bool = False) -> "ProgramBuilder":
        """Declare an array from a set string, e.g. ``'[N] -> { A[i, j] : ... }'``."""
        parsed = parse_set(domain)
        self._arrays.append(
            Array(parsed.space.tuple_name, parsed, is_input=is_input, is_output=is_output)
        )
        return self

    def add_statement(self, domain: str, flops: int = 1,
                      accesses: Iterable[ArrayAccess] = ()) -> "ProgramBuilder":
        """Declare a statement from a set string; the tuple name is the statement name."""
        parsed = parse_set(domain)
        self._statements.append(
            Statement(parsed.space.tuple_name, parsed, flops=flops, accesses=tuple(accesses))
        )
        return self

    def add_dependence(self, relation: str, label: str = "") -> "ProgramBuilder":
        """Declare a flow dependence from a map string ``{ Sink[..] -> Source[..] : cond }``."""
        function, domain = parse_function(relation)
        self._dependences.append(
            FlowDep(
                source=function.target_tuple,
                sink=function.domain_space.tuple_name,
                function=function,
                domain=domain,
                label=label or relation.strip(),
            )
        )
        return self

    def build(self) -> AffineProgram:
        return AffineProgram(
            self.name, self.params, self._arrays, self._statements, self._dependences
        )
